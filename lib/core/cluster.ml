module Transport = Cloudtx_sim.Transport
module Splitmix = Cloudtx_sim.Splitmix
module Latency = Cloudtx_sim.Latency
module Server = Cloudtx_store.Server
module Admin = Cloudtx_policy.Admin
module Ca = Cloudtx_policy.Ca
module Proof = Cloudtx_policy.Proof
module Rule = Cloudtx_policy.Rule

type server_spec = {
  s_name : string;
  s_items : (string * Cloudtx_store.Value.t) list;
  s_constraints : Cloudtx_store.Integrity.t list;
}

let server_spec ~name ?(constraints = []) ~items () =
  { s_name = name; s_items = items; s_constraints = constraints }

type t = {
  transport : Message.t Transport.t;
  master : Master.t;
  participants : (string * Participant.t) list;
  admins : (string * Admin.t) list;
  cas : (string * Ca.t) list;
  context : Rule.fact list ref;
  domain_of : string -> string;
  prop_rng : Splitmix.t;
}

let master_name = "master"

let create ?(seed = 1L) ?(latency = Latency.lan) ?ocsp_latency ?(cas = [])
    ?(context_facts = []) ?domain_of ?variant ?proof_cache ?dedup
    ?inquiry_timeout ~servers ~domains () =
  if servers = [] then invalid_arg "Cluster.create: no servers";
  if domains = [] then invalid_arg "Cluster.create: no domains";
  let domain_of =
    match domain_of with
    | Some f -> f
    | None ->
      let default = fst (List.hd domains) in
      fun _item -> default
  in
  let transport =
    Transport.create ~seed ~latency ~label_of:Message.label ()
  in
  let admins =
    List.map (fun (d, rules) -> (d, Admin.create ~domain:d rules)) domains
  in
  let master =
    Master.create ~transport ~name:master_name ~admins:(List.map snd admins)
  in
  let cas = List.map (fun ca -> (Ca.name ca, ca)) cas in
  let context = ref context_facts in
  let server_names = List.map (fun s -> s.s_name) servers in
  (* One shared environment: issuer resolution is cluster-wide and the
     context facts are read through the mutable cell at evaluation time. *)
  let env =
    {
      Proof.find_ca = (fun issuer -> List.assoc_opt issuer cas);
      trusted_server = (fun issuer -> List.mem issuer server_names);
      context = (fun () -> !context);
    }
  in
  let ocsp_delay =
    Option.map
      (fun model ->
        let rng = Transport.fork_rng transport in
        fun () -> Latency.sample model rng)
      ocsp_latency
  in
  let participants =
    List.map
      (fun spec ->
        let server =
          Server.create ~name:spec.s_name ~constraints:spec.s_constraints
            ~items:spec.s_items ()
        in
        (* Bootstrap: every replica starts at version 1 of every domain. *)
        List.iter
          (fun (_, admin) ->
            ignore
              (Cloudtx_policy.Replica.install (Server.replica server)
                 (Admin.latest admin)))
          admins;
        let participant =
          Participant.create ~transport ~server ~env ~domain_of ?variant
            ?ocsp_delay ?proof_cache ?dedup ?inquiry_timeout ()
        in
        (spec.s_name, participant))
      servers
  in
  let prop_rng = Transport.fork_rng transport in
  { transport; master; participants; admins; cas; context; domain_of; prop_rng }

let transport t = t.transport
let master t = t.master
let participants t = List.map snd t.participants

let participant t name =
  match List.assoc_opt name t.participants with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Cluster.participant: unknown %s" name)

let ca t name = List.assoc_opt name t.cas
let domain_of t item = t.domain_of item
let set_context t facts = t.context := facts

let publish t ~domain ?accept_capabilities ~delay rules =
  let admin =
    match List.assoc_opt domain t.admins with
    | Some a -> a
    | None -> invalid_arg (Printf.sprintf "Cluster.publish: unknown domain %s" domain)
  in
  let policy = Admin.publish ?accept_capabilities admin rules in
  (* Staleness accounting: record the master's latest version and how far
     each replica now trails it.  Participants re-settle their own gauge
     as propagations and fetch-driven updates land. *)
  let registry = Transport.registry t.transport in
  if Cloudtx_obs.Registry.enabled registry then begin
    let version = float_of_int policy.Cloudtx_policy.Policy.version in
    Cloudtx_obs.Registry.set_gauge registry "policy_master_version"
      [ ("domain", domain) ] version;
    List.iter
      (fun (name, participant) ->
        let held =
          match
            Cloudtx_policy.Replica.get
              (Server.replica (Participant.server participant))
              ~domain
          with
          | Some p -> float_of_int p.Cloudtx_policy.Policy.version
          | None -> 0.
        in
        Cloudtx_obs.Registry.set_gauge registry "policy_staleness"
          [ ("server", name); ("domain", domain) ]
          (Float.max 0. (version -. held)))
      t.participants
  end;
  List.iter
    (fun (name, _) ->
      let lag =
        match delay with
        | `Now -> 0.
        | `Uniform (lo, hi) -> Splitmix.uniform t.prop_rng ~lo ~hi
        | `Fixed f -> f name
      in
      (* An infinite lag means the update never reaches this server (a
         perpetually stale replica) — don't schedule anything, or the
         far-future event would stall quiescence detection. *)
      if Float.is_finite lag then
        Transport.at t.transport ~delay:lag (fun () ->
            Transport.send t.transport ~src:master_name ~dst:name
              (Message.Propagate_policy { policy })))
    t.participants;
  policy

let run ?until ?max_steps t = Transport.run ?until ?max_steps t.transport
let now t = Transport.now t.transport
