(* Re-export: consistency predicates live in the sans-IO protocol core. *)
include Cloudtx_protocol.Consistency
