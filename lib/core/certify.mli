(** Serializability certifier: journal-driven history checking.

    Replays nothing — it reads a flight-recorder journal (the same JSONL
    stream {!Audit} replays and {!Health} watches), extracts each
    committed transaction's read/write sets and the per-store version
    order, builds the direct serialization graph (DSG) and decides
    whether the committed history is serializable.

    Extraction rules (best-effort, seq-gap tolerant like {!Health}):
    - PS [Exec_result{Executed}] input records yield read events (the
      overlay reads the store returned) and buffer the query's write
      updates into the transaction's workspace model.
    - PS [Apply{commit=true}] action records install versions; since
      codec v3 they carry the machine-stamped per-key version order, and
      a repeated create record marks a crash epoch (version counters
      restart per epoch).  Pre-v3 journals fall back to journal order
      and the buffered write keys.
    - TM [Finish] action records supply outcomes for transactions with
      no [Apply] anywhere (read-only commits).
    - PS [Exec{snapshot=true}] action records mark the following reads
      as snapshot reads, mapped by version commit time vs the
      transaction's start timestamp; other reads map positionally (the
      newest version applied before the read record).

    DSG edges (each carries the journal seqs evidencing both ends):
    - WR: the reader observed the source's installed version.
    - WW: consecutive versions of one key at one store.
    - RW (anti-dependency): the reader observed the version the target
      immediately overwrote.

    The verdict is either a witness serial order (any topological order
    of the DSG) plus the Fekete snapshot-isolation test, or a minimal
    anomaly cycle named by the classic taxonomy — plus a value-level
    dirty-read check that catches reads of uncommitted workspaces, which
    never form DSG edges.  All decisions are deterministic functions of
    the journal bytes. *)

type edge_kind = Wr | Ww | Rw

type edge = {
  src : string;  (** transaction the dependency leaves *)
  dst : string;  (** transaction it enters *)
  kind : edge_kind;
  node : string;  (** store the conflict happened on *)
  key : string;
  src_seq : int;  (** journal seq evidencing the source end *)
  dst_seq : int;  (** journal seq evidencing the destination end *)
}

type anomaly_kind =
  | Lost_update  (** rw+ww 2-cycle on one key *)
  | Write_skew  (** rw+rw 2-cycle across keys *)
  | Non_repeatable_read  (** rw+wr 2-cycle on one key *)
  | Read_skew  (** rw+wr 2-cycle across keys (G-single) *)
  | Dirty_read  (** a committed read matched an uncommitted workspace *)
  | Serialization_cycle  (** any other DSG cycle (G2) *)

type anomaly = {
  anomaly : anomaly_kind;
  txns : string list;  (** transactions implicated, cycle order *)
  cycle : edge list;  (** the minimal cycle; [] for dirty reads *)
  seq_range : int * int;  (** journal seqs bounding the evidence *)
  detail : string;
}

type verdict =
  | Serializable of {
      order : string list;  (** witness serial order, all committed txns *)
      si : bool;
          (** passes the Fekete snapshot-isolation test: every DSG cycle
              carries two consecutive anti-dependency edges (trivially
              true here — the graph is acyclic) *)
    }
  | Anomalous of anomaly

type report = {
  records : int;  (** envelope records parsed *)
  decode_errors : int;  (** records skipped as undecodable *)
  committed : string list;  (** by first journal appearance *)
  aborted : string list;
  reads_mapped : int;  (** external reads mapped to a version *)
  versions : int;  (** installed versions across all stores *)
  edges : edge list;  (** the DSG, deduplicated, seq-ordered *)
  verdict : verdict;
}

(** Certify a journal given as its lines (header first).  [Error] only
    for an unreadable header or an empty journal — record-level damage
    is tolerated and counted in [decode_errors]. *)
val run : lines:string list -> (report, string) result

val of_file : string -> (report, string) result

val kind_name : edge_kind -> string

(** ["lost update"], ["write skew"], ... *)
val anomaly_name : anomaly_kind -> string

(** One-line [t1 -rw(x@s1 #5->#9)-> t2 -...] rendering of an anomaly. *)
val describe_anomaly : anomaly -> string

(** One-line verdict summary for CLI tables. *)
val summary : report -> string

(** Export the DSG (committed transactions, conflict edges, anomaly
    cycle highlighted) for {!Cloudtx_obs.Dsg.to_dot} / [to_json]. *)
val to_dsg : report -> Cloudtx_obs.Dsg.t
