module Json = Cloudtx_policy.Json
module Codec = Cloudtx_protocol.Codec
module Tm = Cloudtx_protocol.Tm_machine
module Ps = Cloudtx_protocol.Ps_machine
module Query = Cloudtx_txn.Query
module Transaction = Cloudtx_txn.Transaction
module Value = Cloudtx_store.Value
module Dsg = Cloudtx_obs.Dsg

type edge_kind = Wr | Ww | Rw

type edge = {
  src : string;
  dst : string;
  kind : edge_kind;
  node : string;
  key : string;
  src_seq : int;
  dst_seq : int;
}

type anomaly_kind =
  | Lost_update
  | Write_skew
  | Non_repeatable_read
  | Read_skew
  | Dirty_read
  | Serialization_cycle

type anomaly = {
  anomaly : anomaly_kind;
  txns : string list;
  cycle : edge list;
  seq_range : int * int;
  detail : string;
}

type verdict =
  | Serializable of { order : string list; si : bool }
  | Anomalous of anomaly

type report = {
  records : int;
  decode_errors : int;
  committed : string list;
  aborted : string list;
  reads_mapped : int;
  versions : int;
  edges : edge list;
  verdict : verdict;
}

let kind_name = function Wr -> "wr" | Ww -> "ww" | Rw -> "rw"

let anomaly_name = function
  | Lost_update -> "lost update"
  | Write_skew -> "write skew"
  | Non_repeatable_read -> "non-repeatable read"
  | Read_skew -> "read skew"
  | Dirty_read -> "dirty read"
  | Serialization_cycle -> "serialization cycle"

(* ------------------------------------------------------------------ *)
(* Extraction: journal records -> history events                       *)
(* ------------------------------------------------------------------ *)

type node_kind = Tm_node of string | Ps_node

(* Events the analysis walks, kept in journal order. *)
type event =
  | Read of {
      r_seq : int;
      r_node : string;
      r_txn : string;
      r_key : string;
      r_value : Value.t option;
      r_snapshot : bool;
      r_ts : float;  (* transaction start: snapshot reads map by it *)
    }
  | Buffer of {
      b_seq : int;
      b_node : string;
      b_txn : string;
      b_key : string;
      b_update : Value.update;
    }
  | Apply of {
      a_seq : int;
      a_time : float;
      a_node : string;
      a_epoch : int;
      a_txn : string;
      a_commit : bool;
      a_writes : (string * int) list;  (* [] in pre-v3 journals *)
    }
  | Settle of { s_seq : int; s_node : string; s_txn : string }
      (* Forget: workspace gone without an Apply *)

type ex = {
  kinds : (string, node_kind) Hashtbl.t;
  epochs : (string, int) Hashtbl.t;  (* PS node -> create count *)
  pending_exec : (string * string * string, bool * float) Hashtbl.t;
      (* (node, txn, query id) -> (snapshot, start ts) of the last Exec *)
  first_seq : (string, int) Hashtbl.t;  (* txn -> first appearance *)
  tm_outcome : (string, bool) Hashtbl.t;  (* TM Finish: txn -> committed *)
  mutable events : event list;  (* reversed *)
  mutable records : int;
  mutable decode_errors : int;
}

let create_ex () =
  {
    kinds = Hashtbl.create 16;
    epochs = Hashtbl.create 16;
    pending_exec = Hashtbl.create 64;
    first_seq = Hashtbl.create 16;
    tm_outcome = Hashtbl.create 16;
    events = [];
    records = 0;
    decode_errors = 0;
  }

let push ex ev = ex.events <- ev :: ex.events

let note_txn ex ~seq txn =
  if not (Hashtbl.mem ex.first_seq txn) then Hashtbl.replace ex.first_seq txn seq

let epoch_of ex node = Option.value ~default:1 (Hashtbl.find_opt ex.epochs node)

let on_create ex ~node payload =
  match Result.bind (Json.member "kind" payload) Json.to_str with
  | Ok "tm" -> (
    match Result.bind (Json.member "txn" payload) Codec.transaction_of_json with
    | Ok txn -> Hashtbl.replace ex.kinds node (Tm_node txn.Transaction.id)
    | Error _ -> ex.decode_errors <- ex.decode_errors + 1)
  | Ok _ ->
    Hashtbl.replace ex.kinds node Ps_node;
    (* Repeated creates mark machine restarts: a new crash epoch. *)
    let e =
      match Hashtbl.find_opt ex.epochs node with Some e -> e + 1 | None -> 1
    in
    Hashtbl.replace ex.epochs node e
  | Error _ -> ex.decode_errors <- ex.decode_errors + 1

let on_ps_input ex ~seq ~node input =
  match input with
  | Ps.Exec_result { txn; query; result = Ps.Executed reads; _ } ->
    note_txn ex ~seq txn;
    (* The store buffers the query's writes before computing the overlay
       reads, so the Buffer events precede the Read events of the same
       record: a read-modify-write query reads its own write. *)
    List.iter
      (fun (b_key, b_update) ->
        push ex (Buffer { b_seq = seq; b_node = node; b_txn = txn; b_key; b_update }))
      query.Query.writes;
    let r_snapshot, r_ts =
      Option.value ~default:(false, 0.)
        (Hashtbl.find_opt ex.pending_exec (node, txn, query.Query.id))
    in
    List.iter
      (fun (r_key, r_value) ->
        push ex
          (Read { r_seq = seq; r_node = node; r_txn = txn; r_key; r_value; r_snapshot; r_ts }))
      reads
  | _ -> ()

let on_ps_action ex ~seq ~time_ms ~node action =
  match action with
  | Ps.Exec { txn; ts; query; snapshot; _ } ->
    note_txn ex ~seq txn;
    Hashtbl.replace ex.pending_exec (node, txn, query.Query.id) (snapshot, ts)
  | Ps.Apply { txn; commit; writes; _ } ->
    note_txn ex ~seq txn;
    push ex
      (Apply
         {
           a_seq = seq;
           a_time = time_ms;
           a_node = node;
           a_epoch = epoch_of ex node;
           a_txn = txn;
           a_commit = commit;
           a_writes = writes;
         })
  | Ps.Forget { txn } -> push ex (Settle { s_seq = seq; s_node = node; s_txn = txn })
  | _ -> ()

let on_tm_action ex ~txn action =
  match action with
  | Tm.Finish { committed; _ } -> Hashtbl.replace ex.tm_outcome txn committed
  | _ -> ()

let feed_json ex ~seq ~time_ms ~node ~dir payload =
  ex.records <- ex.records + 1;
  match dir with
  | "create" -> on_create ex ~node payload
  | "input" -> (
    match Hashtbl.find_opt ex.kinds node with
    | Some Ps_node | None -> (
      (* Unclassified node (create evicted from a capped buffer): try the
         PS decoder — PS inputs are the only ones that matter here. *)
      match Codec.ps_input_of_json payload with
      | Ok input ->
        if not (Hashtbl.mem ex.kinds node) then
          Hashtbl.replace ex.kinds node Ps_node;
        on_ps_input ex ~seq ~node input
      | Error _ ->
        if Hashtbl.mem ex.kinds node then
          ex.decode_errors <- ex.decode_errors + 1)
    | Some (Tm_node _) -> ())
  | "action" -> (
    match Hashtbl.find_opt ex.kinds node with
    | Some (Tm_node txn) -> (
      match Codec.tm_action_of_json payload with
      | Ok action -> on_tm_action ex ~txn action
      | Error _ -> ex.decode_errors <- ex.decode_errors + 1)
    | Some Ps_node | None -> (
      match Codec.ps_action_of_json payload with
      | Ok action -> on_ps_action ex ~seq ~time_ms ~node action
      | Error _ ->
        if Hashtbl.mem ex.kinds node then
          ex.decode_errors <- ex.decode_errors + 1))
  (* Driver-side resilience events: no data accesses, nothing to certify. *)
  | "event" -> ()
  | _ -> ex.decode_errors <- ex.decode_errors + 1

let feed_line ex line =
  match Json.parse line with
  | Error _ -> ex.decode_errors <- ex.decode_errors + 1
  | Ok j -> (
    let get name decode = Result.bind (Json.member name j) decode in
    match
      ( get "seq" Json.to_int,
        get "time_ms" Json.to_float,
        get "node" Json.to_str,
        get "dir" Json.to_str,
        Json.member "payload" j )
    with
    | Ok seq, Ok time_ms, Ok node, Ok dir, Ok payload ->
      feed_json ex ~seq ~time_ms ~node ~dir payload
    | _ -> ex.decode_errors <- ex.decode_errors + 1)

let check_header line =
  match Json.parse line with
  | Error m -> Error (Printf.sprintf "line 1: bad journal header: %s" m)
  | Ok j -> (
    match Result.bind (Json.member "journal" j) Json.to_str with
    | Ok "cloudtx" -> Ok ()
    | Ok other -> Error (Printf.sprintf "line 1: journal kind %S unknown" other)
    | Error m -> Error (Printf.sprintf "line 1: bad journal header: %s" m))

(* ------------------------------------------------------------------ *)
(* Analysis: events -> version chains, read mappings, DSG              *)
(* ------------------------------------------------------------------ *)

(* One installed version of (node, key); index 0 of every chain is the
   implicit initial version (v_txn = ""). *)
type version = {
  v_txn : string;
  v_seq : int;
  v_time : float;
  v_epoch : int;
  v_version : int option;  (* machine stamp; None in pre-v3 journals *)
}

let initial = { v_txn = ""; v_seq = 0; v_time = 0.; v_epoch = 0; v_version = Some 0 }

type mapping = {
  m_txn : string;  (* the reader *)
  m_node : string;
  m_key : string;
  m_idx : int;  (* chain index of the version it observed *)
  m_seq : int;
  m_value : Value.t option;
}

(* Workspace value model: what a fold of known updates yields.  Unknown
   spreads from unjournaled bases (a key's unread initial value, a
   recovered transaction whose buffered updates predate the journal). *)
type sim = Unknown | Known of Value.t option

let sim_update u prev =
  match (u, prev) with
  | Value.Set v, _ -> Known (Some v)
  | Value.Add _, Unknown -> Unknown
  | u, Known prev -> Known (Value.apply u prev)

let opt_value_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> Value.equal a b
  | _ -> false

let value_str = function
  | None -> "-"
  | Some (Value.Int n) -> string_of_int n
  | Some (Value.Text s) -> Printf.sprintf "%S" s

let kind_rank = function Wr -> 0 | Ww -> 1 | Rw -> 2

let describe_edge e =
  Printf.sprintf "%s -%s(%s@%s #%d->#%d)-> %s" e.src (kind_name e.kind) e.key
    e.node e.src_seq e.dst_seq e.dst

let analyze ex =
  let events = List.rev ex.events in
  let committed_tbl = Hashtbl.create 16 in
  let aborted_tbl = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match ev with
      | Apply { a_txn; a_commit = true; _ } -> Hashtbl.replace committed_tbl a_txn ()
      | Apply { a_txn; a_commit = false; _ } -> Hashtbl.replace aborted_tbl a_txn ()
      | _ -> ())
    events;
  Hashtbl.iter
    (fun txn committed ->
      if committed then Hashtbl.replace committed_tbl txn ()
      else Hashtbl.replace aborted_tbl txn ())
    ex.tm_outcome;
  Hashtbl.iter (fun txn () -> Hashtbl.remove aborted_tbl txn) committed_tbl;
  let is_committed txn = Hashtbl.mem committed_tbl txn in
  let first_seq txn =
    Option.value ~default:max_int (Hashtbl.find_opt ex.first_seq txn)
  in
  let txn_order a b =
    match compare (first_seq a) (first_seq b) with
    | 0 -> String.compare a b
    | c -> c
  in
  let sorted_txns tbl =
    Hashtbl.fold (fun txn () acc -> txn :: acc) tbl [] |> List.sort txn_order
  in
  let committed = sorted_txns committed_tbl in
  let aborted = sorted_txns aborted_tbl in

  (* First walk: buffered workspace updates, settle seqs, version chains. *)
  let buffered : (string * string * string, (int * Value.update) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let buffered_keys : (string * string, string list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let settled : (string * string, int) Hashtbl.t = Hashtbl.create 32 in
  let chains : (string * string, version list ref) Hashtbl.t = Hashtbl.create 32 in
  let chain_ref node key =
    match Hashtbl.find_opt chains (node, key) with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace chains (node, key) r;
      r
  in
  List.iter
    (fun ev ->
      match ev with
      | Buffer { b_seq; b_node; b_txn; b_key; b_update } ->
        let r =
          match Hashtbl.find_opt buffered (b_txn, b_node, b_key) with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.replace buffered (b_txn, b_node, b_key) r;
            r
        in
        r := (b_seq, b_update) :: !r;
        let keys =
          match Hashtbl.find_opt buffered_keys (b_txn, b_node) with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.replace buffered_keys (b_txn, b_node) r;
            r
        in
        if not (List.mem b_key !keys) then keys := !keys @ [ b_key ]
      | Apply { a_seq; a_time; a_node; a_epoch; a_txn; a_commit; a_writes } ->
        if not (Hashtbl.mem settled (a_txn, a_node)) then
          Hashtbl.replace settled (a_txn, a_node) a_seq;
        if a_commit then begin
          let keyed =
            match a_writes with
            | _ :: _ -> a_writes |> List.map (fun (k, v) -> (k, Some v))
            | [] ->
              (* Pre-v3 journal: fall back to the keys the workspace
                 buffered, in journal order. *)
              (match Hashtbl.find_opt buffered_keys (a_txn, a_node) with
              | Some keys -> List.map (fun k -> (k, None)) !keys
              | None -> [])
          in
          List.iter
            (fun (key, v_version) ->
              chain_ref a_node key :=
                {
                  v_txn = a_txn;
                  v_seq = a_seq;
                  v_time = a_time;
                  v_epoch = a_epoch;
                  v_version;
                }
                :: !(chain_ref a_node key))
            keyed
        end
      | Settle { s_seq; s_node; s_txn } ->
        if not (Hashtbl.mem settled (s_txn, s_node)) then
          Hashtbl.replace settled (s_txn, s_node) s_seq
      | Read _ -> ())
    events;

  (* Finalize chains: order by (epoch, machine version stamp) — falling
     back to journal order where stamps are absent — then collapse
     consecutive same-installer entries (a decision re-delivered across a
     crash epoch re-applies the same commit) and prepend the implicit
     initial version. *)
  let chain_keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) chains [] |> List.sort compare
  in
  let finalized = Hashtbl.create 32 in
  List.iter
    (fun (node, key) ->
      let entries = List.rev !(Hashtbl.find (chains : _ Hashtbl.t) (node, key)) in
      let indexed = List.mapi (fun i e -> (i, e)) entries in
      let sort_key (i, e) =
        match e.v_version with
        | Some v -> (e.v_epoch, 0, v, i)
        | None -> (e.v_epoch, 1, i, i)
      in
      let sorted =
        List.stable_sort (fun a b -> compare (sort_key a) (sort_key b)) indexed
        |> List.map snd
      in
      let collapsed =
        List.fold_left
          (fun acc e ->
            match acc with
            | prev :: _ when String.equal prev.v_txn e.v_txn -> acc
            | _ -> e :: acc)
          [] sorted
        |> List.rev
      in
      Hashtbl.replace finalized (node, key) (Array.of_list (initial :: collapsed)))
    chain_keys;
  let chain node key =
    match Hashtbl.find_opt finalized (node, key) with
    | Some c -> c
    | None -> [| initial |]
  in
  let versions =
    List.fold_left
      (fun acc k -> acc + Array.length (Hashtbl.find finalized k) - 1)
      0 chain_keys
  in

  (* Workspace folds for the value-level checks. *)
  let updates_before txn node key ~seq =
    match Hashtbl.find_opt buffered (txn, node, key) with
    | None -> []
    | Some r -> List.rev !r |> List.filter (fun (s, _) -> s <= seq)
  in
  let learned : (string * string * int, Value.t option) Hashtbl.t =
    Hashtbl.create 32
  in
  (* Simulated committed value at chain index [idx]: fold each installer's
     known updates over the previous version, seeded by learned initial
     values (the store's opening state is not journaled — the first clean
     read of a version teaches us its value). *)
  let chain_value node key ~idx =
    let c = chain node key in
    let rec go i acc =
      if i > idx then acc
      else
        let acc =
          match Hashtbl.find_opt learned (node, key, i) with
          | Some v -> Known v
          | None ->
            if i = 0 then acc
            else begin
              let e = c.(i) in
              match updates_before e.v_txn node key ~seq:e.v_seq with
              | [] -> Unknown
              | updates ->
                List.fold_left (fun acc (_, u) -> sim_update u acc) acc updates
            end
        in
        go (i + 1) acc
    in
    go 0 Unknown
  in

  (* Second walk: map each committed transaction's external reads to the
     version it observed; check observed values against the simulation
     and attribute divergences to uncommitted workspaces (dirty reads). *)
  let mappings = ref [] in
  let dirty = ref [] in
  let reads_mapped = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Read { r_seq; r_node; r_txn; r_key; r_value; r_snapshot; r_ts }
        when is_committed r_txn ->
        let own =
          updates_before r_txn r_node r_key ~seq:r_seq <> []
        in
        if not own then begin
          let c = chain r_node r_key in
          let visible i =
            if r_snapshot then c.(i).v_time <= r_ts else c.(i).v_seq < r_seq
          in
          let idx = ref 0 in
          Array.iteri (fun i _ -> if visible i then idx := i) c;
          let idx = !idx in
          incr reads_mapped;
          mappings :=
            { m_txn = r_txn; m_node = r_node; m_key = r_key; m_idx = idx;
              m_seq = r_seq; m_value = r_value }
            :: !mappings;
          match chain_value r_node r_key ~idx with
          | Unknown -> Hashtbl.replace learned (r_node, r_key, idx) r_value
          | Known expected ->
            if not (opt_value_equal expected r_value) then begin
              (* The read does not match any committed state: find the
                 uncommitted workspace it leaked from. *)
              let writers =
                Hashtbl.fold
                  (fun (txn, node, key) r acc ->
                    if
                      String.equal node r_node && String.equal key r_key
                      && not (String.equal txn r_txn)
                      && List.exists (fun (s, _) -> s < r_seq) (List.rev !r)
                      &&
                      match Hashtbl.find_opt settled (txn, node) with
                      | Some s -> s > r_seq
                      | None -> true
                    then txn :: acc
                    else acc)
                  buffered []
                |> List.sort txn_order
              in
              let attributed =
                List.find_opt
                  (fun txn ->
                    let overlay =
                      List.fold_left
                        (fun acc (_, u) -> sim_update u acc)
                        (Known expected)
                        (updates_before txn r_node r_key ~seq:r_seq)
                    in
                    match overlay with
                    | Known o -> opt_value_equal o r_value
                    | Unknown -> false)
                  writers
              in
              let mk ~txns ~lo ~detail =
                {
                  anomaly = Dirty_read;
                  txns;
                  cycle = [];
                  seq_range = (lo, r_seq);
                  detail;
                }
              in
              let a =
                match attributed with
                | Some writer ->
                  let w_seq =
                    match updates_before writer r_node r_key ~seq:r_seq with
                    | (s, _) :: _ -> s
                    | [] -> r_seq
                  in
                  mk ~txns:[ r_txn; writer ] ~lo:w_seq
                    ~detail:
                      (Printf.sprintf
                         "%s read %s=%s at #%d: the uncommitted workspace %s \
                          buffered at #%d, not the committed value %s"
                         r_txn r_key (value_str r_value) r_seq writer w_seq
                         (value_str
                            (match chain_value r_node r_key ~idx with
                            | Known v -> v
                            | Unknown -> None)))
                | None ->
                  mk ~txns:[ r_txn ] ~lo:(c.(idx).v_seq)
                    ~detail:
                      (Printf.sprintf
                         "%s read %s=%s at #%d: matches no committed version \
                          (expected %s from #%d)"
                         r_txn r_key (value_str r_value) r_seq
                         (value_str expected) c.(idx).v_seq)
              in
              dirty := a :: !dirty
            end
        end
      | _ -> ())
    events;
  let mappings = List.rev !mappings in
  let dirty = List.rev !dirty in

  (* DSG edges with seq provenance. *)
  let raw_edges = ref [] in
  List.iter
    (fun (node, key) ->
      let c = chain node key in
      for i = 1 to Array.length c - 2 do
        raw_edges :=
          {
            src = c.(i).v_txn;
            dst = c.(i + 1).v_txn;
            kind = Ww;
            node;
            key;
            src_seq = c.(i).v_seq;
            dst_seq = c.(i + 1).v_seq;
          }
          :: !raw_edges
      done)
    chain_keys;
  List.iter
    (fun m ->
      let c = chain m.m_node m.m_key in
      let v = c.(m.m_idx) in
      if m.m_idx > 0 && not (String.equal v.v_txn m.m_txn) then
        raw_edges :=
          {
            src = v.v_txn;
            dst = m.m_txn;
            kind = Wr;
            node = m.m_node;
            key = m.m_key;
            src_seq = v.v_seq;
            dst_seq = m.m_seq;
          }
          :: !raw_edges;
      if m.m_idx + 1 < Array.length c then begin
        let succ = c.(m.m_idx + 1) in
        if not (String.equal succ.v_txn m.m_txn) then
          raw_edges :=
            {
              src = m.m_txn;
              dst = succ.v_txn;
              kind = Rw;
              node = m.m_node;
              key = m.m_key;
              src_seq = m.m_seq;
              dst_seq = succ.v_seq;
            }
            :: !raw_edges
      end)
    mappings;
  let edges =
    List.sort
      (fun a b ->
        compare
          (a.src_seq, a.dst_seq, kind_rank a.kind, a.src, a.dst, a.node, a.key)
          (b.src_seq, b.dst_seq, kind_rank b.kind, b.src, b.dst, b.node, b.key))
      !raw_edges
    |> List.fold_left
         (fun (seen, acc) e ->
           let id = (e.src, e.dst, kind_rank e.kind, e.node, e.key) in
           if List.mem id seen then (seen, acc) else (id :: seen, e :: acc))
         ([], [])
    |> snd |> List.rev
  in

  (committed, aborted, versions, !reads_mapped, edges, dirty)

(* ------------------------------------------------------------------ *)
(* Decision: topological witness, minimal cycle, SI membership         *)
(* ------------------------------------------------------------------ *)

let decide ~committed ~edges ~dirty =
  match dirty with
  | a :: _ -> Anomalous a
  | [] ->
    let nodes = committed in
    let out u =
      List.filter (fun e -> String.equal e.src u) edges
    in
    (* Kahn with deterministic tie-break: [committed] is already ordered
       by first journal appearance, so the witness respects time. *)
    let indeg = Hashtbl.create 16 in
    List.iter (fun n -> Hashtbl.replace indeg n 0) nodes;
    List.iter
      (fun e ->
        match Hashtbl.find_opt indeg e.dst with
        | Some d -> Hashtbl.replace indeg e.dst (d + 1)
        | None -> ())
      edges;
    let order = ref [] in
    let remaining = ref nodes in
    let progress = ref true in
    while !progress do
      progress := false;
      match
        List.find_opt (fun n -> Hashtbl.find indeg n = 0) !remaining
      with
      | Some n ->
        progress := true;
        order := n :: !order;
        remaining := List.filter (fun m -> not (String.equal m n)) !remaining;
        List.iter
          (fun e ->
            match Hashtbl.find_opt indeg e.dst with
            | Some d -> Hashtbl.replace indeg e.dst (d - 1)
            | None -> ())
          (out n)
      | None -> ()
    done;
    if !remaining = [] then begin
      (* Acyclic: serializable; the Fekete SI test is trivially met. *)
      Serializable { order = List.rev !order; si = true }
    end
    else begin
      (* Shortest cycle over the stuck subgraph, deterministically: BFS
         from each stuck node in order, neighbors in edge-list order. *)
      let stuck = !remaining in
      let best = ref None in
      List.iter
        (fun start ->
          let parent = Hashtbl.create 16 in
          let visited = Hashtbl.create 16 in
          Hashtbl.replace visited start ();
          let q = Queue.create () in
          Queue.add start q;
          let found = ref None in
          while !found = None && not (Queue.is_empty q) do
            let u = Queue.pop q in
            List.iter
              (fun e ->
                if !found = None && List.mem e.dst (start :: stuck) then
                  if String.equal e.dst start then found := Some e
                  else if not (Hashtbl.mem visited e.dst) then begin
                    Hashtbl.replace visited e.dst ();
                    Hashtbl.replace parent e.dst e;
                    Queue.add e.dst q
                  end)
              (out u)
          done;
          match !found with
          | None -> ()
          | Some last ->
            let rec back u acc =
              if String.equal u start then acc
              else
                let e = Hashtbl.find parent u in
                back e.src (e :: acc)
            in
            let cycle = back last.src [] @ [ last ] in
            let better =
              match !best with
              | None -> true
              | Some b -> List.length cycle < List.length b
            in
            if better then best := Some cycle)
        stuck;
      let cycle = Option.value ~default:[] !best in
      let kinds = List.sort compare (List.map (fun e -> kind_rank e.kind) cycle) in
      let keys = List.sort_uniq String.compare (List.map (fun e -> e.key) cycle) in
      let anomaly =
        match (cycle, kinds) with
        | [ _; _ ], [ 1; 2 ] (* ww + rw *) ->
          if List.length keys = 1 then Lost_update else Serialization_cycle
        | [ _; _ ], [ 2; 2 ] (* rw + rw *) -> Write_skew
        | [ _; _ ], [ 0; 2 ] (* wr + rw *) ->
          if List.length keys = 1 then Non_repeatable_read else Read_skew
        | _ -> Serialization_cycle
      in
      let txns = List.map (fun e -> e.src) cycle in
      let seqs =
        List.concat_map (fun e -> [ e.src_seq; e.dst_seq ]) cycle
        |> List.filter (fun s -> s > 0)
      in
      let seq_range =
        match seqs with
        | [] -> (0, 0)
        | s :: rest ->
          List.fold_left (fun (lo, hi) s -> (min lo s, max hi s)) (s, s) rest
      in
      Anomalous
        {
          anomaly;
          txns;
          cycle;
          seq_range;
          detail = String.concat "; " (List.map describe_edge cycle);
        }
    end

(* Fekete snapshot-isolation test on a cyclic graph: SI only admits
   cycles with two consecutive anti-dependency (rw) edges, so a cycle
   avoiding rw->rw successions proves the history is not SI either.
   Search the product graph (txn, arrived-via-rw) forbidding rw->rw. *)
let si_test ~edges ~txns =
  let states = List.concat_map (fun t -> [ (t, false); (t, true) ]) txns in
  let succs (u, last_rw) =
    List.filter_map
      (fun e ->
        if String.equal e.src u && not (last_rw && e.kind = Rw) then
          Some (e.dst, e.kind = Rw)
        else None)
      edges
  in
  (* A cycle in the product graph = a base cycle with no rw->rw pair
     anywhere (the carried flag closes the loop). *)
  let color = Hashtbl.create 32 in
  let cyclic = ref false in
  let rec dfs s =
    match Hashtbl.find_opt color s with
    | Some `Done -> ()
    | Some `Active -> cyclic := true
    | None ->
      Hashtbl.replace color s `Active;
      List.iter (fun n -> if not !cyclic then dfs n) (succs s);
      Hashtbl.replace color s `Done
  in
  List.iter (fun s -> if not !cyclic then dfs s) states;
  not !cyclic

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let run ~lines =
  match lines with
  | [] -> Error "empty journal"
  | header :: records -> (
    match check_header header with
    | Error _ as e -> e
    | Ok () ->
      let ex = create_ex () in
      List.iter (fun line -> if String.trim line <> "" then feed_line ex line) records;
      let committed, aborted, versions, reads_mapped, edges, dirty = analyze ex in
      let verdict = decide ~committed ~edges ~dirty in
      let verdict =
        match verdict with
        | Serializable { order; _ } ->
          Serializable { order; si = si_test ~edges ~txns:committed }
        | v -> v
      in
      Ok
        {
          records = ex.records;
          decode_errors = ex.decode_errors;
          committed;
          aborted;
          reads_mapped;
          versions;
          edges;
          verdict;
        })

(* Format auto-detection: binary journals decode to the same canonical
   JSONL lines ({!Journal_io}), so verdicts are format-independent. *)
let of_file path =
  match Journal_io.of_file path with
  | Error m -> Error m
  | Ok loaded -> run ~lines:loaded.Journal_io.lines

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let describe_anomaly a =
  let evidence =
    let lo, hi = a.seq_range in
    Printf.sprintf "seqs %d..%d" lo hi
  in
  match a.cycle with
  | [] -> Printf.sprintf "%s: %s (%s)" (anomaly_name a.anomaly) a.detail evidence
  | cycle ->
    Printf.sprintf "%s: %s (%s)" (anomaly_name a.anomaly)
      (String.concat "; " (List.map describe_edge cycle))
      evidence

let summary r =
  let base =
    Printf.sprintf "%d committed / %d aborted, %d versions, %d edges"
      (List.length r.committed) (List.length r.aborted) r.versions
      (List.length r.edges)
  in
  match r.verdict with
  | Serializable { order; si } ->
    Printf.sprintf "%s: serializable%s%s" base
      (if si then " (si ok)" else " (si violated)")
      (match order with
      | [] -> ""
      | order -> ", witness " ^ String.concat "<" order)
  | Anomalous a ->
    Printf.sprintf "%s: ANOMALY %s [%s], seqs %d..%d" base
      (anomaly_name a.anomaly)
      (String.concat " " a.txns)
      (fst a.seq_range) (snd a.seq_range)

let to_dsg r =
  let in_cycle =
    match r.verdict with
    | Anomalous { cycle; txns; _ } -> (cycle, txns)
    | Serializable _ -> ([], [])
  in
  let cycle_edges, cycle_txns = in_cycle in
  let nodes =
    List.map
      (fun txn ->
        let attrs = [ ("shape", "box") ] in
        let attrs =
          if List.mem txn cycle_txns then
            attrs @ [ ("color", "red"); ("penwidth", "2") ]
          else attrs
        in
        { Dsg.id = txn; attrs })
      r.committed
  in
  let same_edge a b =
    String.equal a.src b.src && String.equal a.dst b.dst && a.kind = b.kind
    && String.equal a.node b.node && String.equal a.key b.key
  in
  let edges =
    List.map
      (fun e ->
        let label =
          Printf.sprintf "%s %s@%s #%d->#%d" (kind_name e.kind) e.key e.node
            e.src_seq e.dst_seq
        in
        let attrs =
          [ ("kind", kind_name e.kind); ("key", e.key); ("node", e.node) ]
        in
        let attrs =
          if List.exists (same_edge e) cycle_edges then
            attrs @ [ ("color", "red"); ("penwidth", "2") ]
          else attrs
        in
        { Dsg.src = e.src; dst = e.dst; label; attrs })
      r.edges
  in
  Dsg.create ~nodes ~edges
