module Json = Cloudtx_policy.Json
module Obs = Cloudtx_obs
module Report = Cloudtx_obs.Report
module Timeseries = Cloudtx_obs.Timeseries
module Monitor = Cloudtx_obs.Monitor
module Slo = Cloudtx_obs.Slo

(* ------------------------------------------------------------------ *)
(* Offline path: journal replay                                        *)
(* ------------------------------------------------------------------ *)

let of_journal ?(rules = Slo.default) ?width_ms path =
  let ts = Timeseries.create ?width_ms () in
  let monitor =
    Monitor.create ~rules ~notify:(Timeseries.note_alert ts) ()
  in
  match Health.of_file ~timeseries:ts path monitor with
  | Error m -> Error m
  | Ok _fed -> Ok (Report.of_timeseries ts, monitor)

(* ------------------------------------------------------------------ *)
(* Live path: snapshot JSONL                                           *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Json.( let* )

let stats_of_json j =
  let* count = Result.bind (Json.member "count" j) Json.to_int in
  let* p50 = Result.bind (Json.member "p50" j) Json.to_float in
  let* p99 = Result.bind (Json.member "p99" j) Json.to_float in
  let* p999 = Result.bind (Json.member "p999" j) Json.to_float in
  let* max = Result.bind (Json.member "max" j) Json.to_float in
  Ok { Report.count; p50; p99; p999; max }

let phases_of_json j =
  match j with
  | Json.Obj members ->
    List.fold_left
      (fun acc (name, sj) ->
        let* acc = acc in
        let* s = stats_of_json sj in
        Ok ((name, s) :: acc))
      (Ok []) members
    |> Result.map List.rev
  | _ -> Error "phases: not an object"

let int_field name j = Result.bind (Json.member name j) Json.to_int
let float_field name j = Result.bind (Json.member name j) Json.to_float

let window_of_json j =
  let* index = int_field "window" j in
  let* start_ms = float_field "start_ms" j in
  let* begun = int_field "begun" j in
  let* commits = int_field "commits" j in
  let* aborts = int_field "aborts" j in
  let* killed = int_field "killed" j in
  let* staleness = int_field "staleness" j in
  let* alerts_fired = int_field "alerts_fired" j in
  let* alerts_resolved = int_field "alerts_resolved" j in
  let* alerts_open = int_field "alerts_open" j in
  let* phases = Result.bind (Json.member "phases" j) phases_of_json in
  Ok
    {
      Report.index;
      start_ms;
      begun;
      commits;
      aborts;
      killed;
      staleness;
      alerts_fired;
      alerts_resolved;
      alerts_open;
      phases;
    }

let totals_of_json j =
  let* begun = int_field "begun" j in
  let* commits = int_field "commits" j in
  let* aborts = int_field "aborts" j in
  let* killed = int_field "killed" j in
  let* staleness = int_field "staleness" j in
  let* alerts_fired = int_field "alerts_fired" j in
  let* alerts_resolved = int_field "alerts_resolved" j in
  let* alerts_open = int_field "alerts_open" j in
  let* phases = Result.bind (Json.member "phases" j) phases_of_json in
  Ok
    {
      Report.begun;
      commits;
      aborts;
      killed;
      staleness;
      alerts_fired;
      alerts_resolved;
      alerts_open;
      phases;
    }

let non_empty_lines s =
  String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")

let lineno_err n r =
  Result.map_error (fun m -> Printf.sprintf "line %d: %s" n m) r

let of_snapshot contents =
  match non_empty_lines contents with
  | [] -> Error "empty snapshot"
  | header :: rest -> (
    let* h = lineno_err 1 (Json.parse header) in
    let* kind = lineno_err 1 (Result.bind (Json.member "metrics" h) Json.to_str) in
    if kind <> "cloudtx" then
      Error (Printf.sprintf "line 1: snapshot kind %S unknown" kind)
    else
      let* version = lineno_err 1 (int_field "version" h) in
      if version <> Timeseries.format_version then
        Error (Printf.sprintf "line 1: snapshot version %d unsupported" version)
      else
        let* width_ms = lineno_err 1 (float_field "width_ms" h) in
        let rec go n windows = function
          | [] -> Error "snapshot without a totals line"
          | line :: rest -> (
            let* j = lineno_err n (Json.parse line) in
            match Json.member "totals" j with
            | Ok tj ->
              if rest <> [] then
                Error (Printf.sprintf "line %d: records after totals" n)
              else
                let* totals = lineno_err n (totals_of_json tj) in
                Ok
                  (Report.make ~width_ms ~windows:(List.rev windows) ~totals)
            | Error _ ->
              let* w = lineno_err n (window_of_json j) in
              go (n + 1) (w :: windows) rest)
        in
        go 2 [] rest)

let of_snapshot_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | contents -> of_snapshot contents
  | exception Sys_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Alert timelines                                                     *)
(* ------------------------------------------------------------------ *)

let alert_lines_of_monitor monitor =
  List.concat_map
    (fun (a : Slo.alert) ->
      Slo.console_line `Fire a
      ::
      (match a.Slo.resolved_at with
      | Some _ -> [ Slo.console_line `Resolve a ]
      | None -> []))
    (Monitor.alerts monitor)

let alert_line_of_json j =
  let* event = Result.bind (Json.member "event" j) Json.to_str in
  let* rule = Result.bind (Json.member "rule" j) Json.to_str in
  let* severity = Result.bind (Json.member "severity" j) Json.to_str in
  let* subject = Result.bind (Json.member "subject" j) Json.to_str in
  let* node = Result.bind (Json.member "node" j) Json.to_str in
  let* first_seq = int_field "first_seq" j in
  let* last_seq = int_field "last_seq" j in
  let* time_ms = float_field "time_ms" j in
  let* detail = Result.bind (Json.member "detail" j) Json.to_str in
  Ok
    (Printf.sprintf "%s %s %s %s (%s) seq %d..%d at %.1fms: %s"
       (String.uppercase_ascii event)
       rule severity subject node first_seq last_seq time_ms detail)

let alert_lines_of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error m
  | contents -> (
    match non_empty_lines contents with
    | [] -> Ok []
    | _header :: records ->
      let rec go n acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
          let* j = lineno_err n (Json.parse line) in
          let* l = lineno_err n (alert_line_of_json j) in
          go (n + 1) (l :: acc) rest
      in
      go 2 [] records)
