(** A simulated cloud deployment: data servers behind policy replicas, a
    master policy server, certificate authorities and the network fabric —
    the paper's Figure 2 topology.

    The cluster bootstraps every server's replica with version 1 of each
    domain's policy; later {!publish} calls model eventually-consistent
    propagation by delivering the new version to each server after a
    per-server delay. *)

module Transport = Cloudtx_sim.Transport
module Splitmix = Cloudtx_sim.Splitmix

type server_spec = {
  s_name : string;
  s_items : (string * Cloudtx_store.Value.t) list;
  s_constraints : Cloudtx_store.Integrity.t list;
}

val server_spec :
  name:string ->
  ?constraints:Cloudtx_store.Integrity.t list ->
  items:(string * Cloudtx_store.Value.t) list ->
  unit ->
  server_spec

type t

(** [create ~servers ~domains ()] builds and wires the whole deployment.

    - [domains]: initial rule set per administrative domain.
    - [domain_of]: item-to-domain mapping (default: everything belongs to
      the single first domain).
    - [cas]: certificate authorities available for credential status
      checks (shared objects — the paper's "online method" abstracted from
      messaging).
    - [context_facts]: session/environment facts visible to every proof
      (mutable via {!set_context}).
    - [seed]/[latency]: simulation determinism and network regime.
    - [dedup]/[inquiry_timeout]: forwarded to every
      {!Participant.create} — idempotent delivery (default on) and the
      termination-protocol timer (default disabled). *)
val create :
  ?seed:int64 ->
  ?latency:Cloudtx_sim.Latency.t ->
  ?ocsp_latency:Cloudtx_sim.Latency.t ->
  ?cas:Cloudtx_policy.Ca.t list ->
  ?context_facts:Cloudtx_policy.Rule.fact list ->
  ?domain_of:(string -> string) ->
  ?variant:Cloudtx_txn.Tpc.variant ->
  ?proof_cache:bool ->
  ?dedup:bool ->
  ?inquiry_timeout:float ->
  servers:server_spec list ->
  domains:(string * Cloudtx_policy.Rule.t list) list ->
  unit ->
  t

val transport : t -> Message.t Transport.t
val master : t -> Master.t
val participants : t -> Participant.t list
val participant : t -> string -> Participant.t
val ca : t -> string -> Cloudtx_policy.Ca.t option
val domain_of : t -> string -> string

(** Replace the environment facts every subsequent proof evaluation sees
    (e.g. the requester moved to another region). *)
val set_context : t -> Cloudtx_policy.Rule.fact list -> unit

(** [publish t ~domain ~delay rules] publishes the next policy version at
    the master and schedules its propagation to each server: [delay]
    returns the per-server lag in milliseconds — [infinity] means the
    update never reaches that server ([`Uniform (lo, hi)] draws
    independently per server, [`Fixed f] asks the callback, [`Now] is
    near-instant).  Returns the new version. *)
val publish :
  t ->
  domain:string ->
  ?accept_capabilities:bool ->
  delay:[ `Uniform of float * float | `Fixed of (string -> float) | `Now ] ->
  Cloudtx_policy.Rule.t list ->
  Cloudtx_policy.Policy.t

(** Convenience: run the simulation engine to quiescence. *)
val run : ?until:float -> ?max_steps:int -> t -> [ `Quiescent | `Time_limit | `Step_limit ]

val now : t -> float
