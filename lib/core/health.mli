(** Journal-to-health bridge: decodes flight-recorder records into
    {!Cloudtx_obs.Monitor} events.

    The monitor itself ([lib/obs]) is protocol-blind; this module owns the
    protocol-aware half of the Watchtower — it reads each journal record
    (live through {!attach}, or offline from a file through {!of_file}),
    decodes the payload with {!Cloudtx_protocol.Codec}, and emits the
    neutral {!Cloudtx_obs.Monitor.event}s the SLO rules consume:
    transaction begin/step/end, master and replica policy versions,
    prepare votes and proof evaluations.

    Decoding is best-effort: a record whose payload does not decode still
    advances the monitor's clock (as [Activity]) and is counted in
    {!decode_errors}; the bridge never raises on malformed input. *)

type t

(** [create monitor] — [timeseries], when given, receives every emitted
    event too (after the monitor), so one journal pass feeds both the
    Watchtower and the windowed series.  The bridge also derives a
    {!Cloudtx_obs.Monitor.Txn_latency} per finished transaction from
    the journaled TM lifecycle (creation, the [2pvc.*] phase-open
    marks, finish) — the same clock points the live registry's phase
    histograms sample, so offline replay reproduces them exactly. *)
val create : ?timeseries:Cloudtx_obs.Timeseries.t -> Cloudtx_obs.Monitor.t -> t

(** Feed one journal record; [payload] is the raw JSON fragment from the
    record envelope. *)
val feed :
  t -> seq:int -> time_ms:float -> node:string -> dir:string -> payload:string -> unit

(** Records whose payload failed to decode so far. *)
val decode_errors : t -> int

(** [attach journal monitor] registers a streaming observer on [journal]
    (see {!Cloudtx_obs.Journal.add_observer}) feeding [monitor] — the
    live [--monitor] path.  Composes with other observers (e.g. a
    [Blame] collector) in registration order.  Returns the bridge for
    {!decode_errors}. *)
val attach :
  ?timeseries:Cloudtx_obs.Timeseries.t ->
  Cloudtx_obs.Journal.t ->
  Cloudtx_obs.Monitor.t ->
  t

(** [of_file path monitor] replays a journal file through the monitor in
    journal order — the [watch] path.  Returns the number of records fed,
    or [Error] on an unreadable file or a bad header line.  Unlike
    {!Audit.of_file} this tolerates seq gaps (a capped in-memory buffer
    legitimately drops oldest records); each record's own [seq] is what
    lands in alert evidence. *)
val of_file :
  ?timeseries:Cloudtx_obs.Timeseries.t ->
  string ->
  Cloudtx_obs.Monitor.t ->
  (int, string) result
