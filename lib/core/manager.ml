module Transport = Cloudtx_sim.Transport
module Counter = Cloudtx_metrics.Counter
module Tracer = Cloudtx_obs.Tracer
module Registry = Cloudtx_obs.Registry
module Transaction = Cloudtx_txn.Transaction
module Query = Cloudtx_txn.Query
module Proof = Cloudtx_policy.Proof
module Policy = Cloudtx_policy.Policy

let log_src = Logs.Src.create "cloudtx.manager" ~doc:"Transaction manager"

module Log = (val Logs.src_log log_src : Logs.LOG)

type master_mode = [ `Once | `Every_round ]

type config = {
  scheme : Scheme.t;
  level : Consistency.level;
  master_mode : master_mode;
  max_rounds : int;
  vote_timeout : float;
  decision_retry : float;
  read_only_optimization : bool;
  snapshot_reads : bool;
}

let config ?(master_mode = `Every_round) ?(max_rounds = 16) ?(vote_timeout = 0.)
    ?(decision_retry = 0.) ?(read_only_optimization = false)
    ?(snapshot_reads = false) scheme level =
  {
    scheme;
    level;
    master_mode;
    max_rounds;
    vote_timeout;
    decision_retry;
    read_only_optimization;
    snapshot_reads;
  }

type awaiting_master =
  | No_fetch
  | Exec_check of Proof.t  (** Incremental global: current query's proof. *)
  | Query_prefetch  (** Continuous global: before Validate requests. *)
  | Commit_resolve  (** 2PVC: before resolving the completed round. *)

type phase =
  | Executing
  | Query_validating  (** Continuous per-query 2PV. *)
  | Committing
  | Deciding
  | Finished

type state = {
  cluster : Cluster.t;
  cfg : config;
  txn : Transaction.t;
  name : string;
  on_done : Outcome.t -> unit;
  view : View.t;
  submitted_at : float;
  queries : Query.t array;
  mutable qidx : int;
  mutable phase : phase;
  mutable awaiting_master : awaiting_master;
  mutable watchdog_epoch : int;  (* guards stale watchdog timers *)
  mutable validation : Validation.t option;
  mutable commit_validates : bool;
  mutable master_fetched_round : int;
  mutable versions_seen : (string * int) list; (* incremental view *)
  mutable decision : bool option;
  mutable reason : Outcome.reason;
  mutable commit_rounds : int;
  mutable decision_targets : string list;
  mutable acked : string list;
  mutable read_only : string list;  (* voted READ; skip the decision phase *)
  (* Observability: span ids are immediate ints (Tracer.no_span when
     tracing is off); the float timestamps are only written when the
     registry is live, keeping the disabled path allocation-free. *)
  mutable txn_span : int;
  mutable query_span : int;
  mutable round_span : int;  (* open 2pv.round / 2pvc.validate span *)
  mutable phase_span : int;  (* open 2pvc.prepare / 2pvc.commit|abort span *)
  mutable commit_started_at : float;
  mutable decided_at : float;
}

let transport s = Cluster.transport s.cluster
let now s = Transport.now (transport s)
let send s ~dst msg = Transport.send (transport s) ~src:s.name ~dst msg
let mark s label = Transport.mark (transport s) ~node:s.name label
let tracer s = Transport.tracer (transport s)
let registry s = Transport.registry (transport s)

let scheme_labels s =
  [
    ("scheme", Scheme.name s.cfg.scheme);
    ("consistency", Consistency.name s.cfg.level);
  ]

let close_round_span s ?attrs () =
  let tr = tracer s in
  if Tracer.enabled tr && s.round_span <> Tracer.no_span then begin
    Tracer.finish tr ?attrs s.round_span;
    s.round_span <- Tracer.no_span
  end

let close_phase_span s =
  let tr = tracer s in
  if Tracer.enabled tr && s.phase_span <> Tracer.no_span then begin
    Tracer.finish tr s.phase_span;
    s.phase_span <- Tracer.no_span
  end

(* Watchdog (installed after [decide] below): every point where the TM
   starts waiting on remote replies arms a timer; any progress that starts
   a new wait re-arms it (bumping the epoch, which invalidates older
   timers), and reaching a decision defuses it. With [vote_timeout] = 0
   the TM blocks indefinitely, the paper's implicit assumption. *)
let watchdog_hook : (state -> unit) ref = ref (fun _ -> assert false)
let arm_watchdog s = !watchdog_hook s

(* Distinct servers of queries 0..k inclusive, in first-use order. *)
let servers_upto s k =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  for i = 0 to k do
    let server = s.queries.(i).Query.server in
    if not (Hashtbl.mem seen server) then begin
      Hashtbl.add seen server ();
      out := server :: !out
    end
  done;
  List.rev !out

let all_servers s = servers_upto s (Array.length s.queries - 1)

let send_execute s =
  arm_watchdog s;
  let q = s.queries.(s.qidx) in
  let tr = tracer s in
  if Tracer.enabled tr then begin
    s.query_span <- Tracer.start tr ~parent:s.txn_span ~track:s.name "query";
    Tracer.set_attr tr s.query_span "index" (string_of_int s.qidx);
    Tracer.set_attr tr s.query_span "server" q.Query.server
  end;
  send s ~dst:q.Query.server
    (Message.Execute
       {
         txn = s.txn.Transaction.id;
         ts = s.submitted_at;
         query = q;
         subject = s.txn.Transaction.subject;
         credentials = s.txn.Transaction.credentials;
         evaluate_proof = Scheme.proofs_during_execution s.cfg.scheme;
         snapshot = s.cfg.snapshot_reads && q.Query.writes = [];
       })

let fetch_master s what =
  s.awaiting_master <- what;
  send s ~dst:"master"
    (Message.Master_version_request { txn = s.txn.Transaction.id })

let finish s =
  s.phase <- Finished;
  mark s "txn_end";
  let committed =
    match s.decision with Some true -> true | Some false | None -> false
  in
  let tr = tracer s in
  if Tracer.enabled tr then begin
    close_round_span s ();
    close_phase_span s;
    if s.txn_span <> Tracer.no_span then begin
      Tracer.finish tr
        ~attrs:
          [
            ("outcome", if committed then "commit" else "abort");
            ("reason", Outcome.reason_name s.reason);
          ]
        s.txn_span;
      s.txn_span <- Tracer.no_span
    end
  end;
  let counters = Transport.counters (transport s) in
  let reg = registry s in
  if Registry.enabled reg then begin
    let labels = scheme_labels s in
    let finished_at = now s in
    Registry.incr reg "txn_total"
      (("outcome", if committed then "commit" else "abort") :: labels);
    Registry.observe reg "txn_latency_ms" labels (finished_at -. s.submitted_at);
    Registry.observe reg "commit_rounds" labels (float_of_int s.commit_rounds);
    Registry.observe reg "proofs_per_txn" labels
      (float_of_int (Counter.get counters ("proofs:" ^ s.txn.Transaction.id)));
    if Float.is_finite s.commit_started_at then begin
      Registry.observe reg "phase_execute_ms" labels
        (s.commit_started_at -. s.submitted_at);
      if Float.is_finite s.decided_at then
        Registry.observe reg "phase_commit_ms" labels
          (s.decided_at -. s.commit_started_at)
    end;
    if Float.is_finite s.decided_at then
      Registry.observe reg "phase_decide_ms" labels (finished_at -. s.decided_at)
  end;
  let outcome =
    {
      Outcome.txn = s.txn.Transaction.id;
      scheme = s.cfg.scheme;
      level = s.cfg.level;
      committed = (match s.decision with Some true -> true | Some false | None -> false);
      reason = s.reason;
      submitted_at = s.submitted_at;
      finished_at = now s;
      commit_rounds = s.commit_rounds;
      proofs_evaluated = Counter.get counters ("proofs:" ^ s.txn.Transaction.id);
      view = s.view;
    }
  in
  s.on_done outcome

let rec arm_decision_retry s =
  if s.cfg.decision_retry > 0. then
    Transport.at (transport s) ~delay:s.cfg.decision_retry (fun () ->
        if s.phase = Deciding then begin
          let commit = Option.get s.decision in
          List.iter
            (fun dst ->
              if not (List.mem dst s.acked) then
                send s ~dst (Message.Decision { txn = s.txn.Transaction.id; commit }))
            s.decision_targets;
          arm_decision_retry s
        end)

let decide s ~commit ~reason ~targets =
  Log.debug (fun m ->
      m "%s: decide %s (%s), %d targets" s.name
        (if commit then "COMMIT" else "ABORT")
        (Outcome.reason_name reason) (List.length targets));
  s.decision <- Some commit;
  s.reason <- reason;
  s.phase <- Deciding;
  let tr = tracer s in
  if Tracer.enabled tr then begin
    close_round_span s ();
    close_phase_span s;
    s.phase_span <-
      Tracer.start tr ~parent:s.txn_span ~track:s.name
        (if commit then "2pvc.commit" else "2pvc.abort");
    Tracer.set_attr tr s.phase_span "reason" (Outcome.reason_name reason)
  end;
  if Registry.enabled (registry s) then s.decided_at <- now s;
  (* Read-only voters released at vote time and take no decision. *)
  let targets = List.filter (fun p -> not (List.mem p s.read_only)) targets in
  if targets <> [] then begin
    mark s
      (Printf.sprintf "log_force:tm_decision:%s"
         (if commit then "commit" else "abort"));
    Counter.incr (Transport.counters (transport s)) "log_force:tm";
    if Registry.enabled (registry s) then
      Registry.incr (registry s) "log_force_total" [ ("site", "tm") ]
  end;
  s.decision_targets <- targets;
  s.acked <- [];
  if targets = [] then finish s
  else begin
    List.iter
      (fun dst ->
        send s ~dst (Message.Decision { txn = s.txn.Transaction.id; commit }))
      targets;
    arm_decision_retry s
  end

(* Abort during execution: tell every server that has (or may have) a
   workspace, including the one that just reported. *)
let abort_now s reason =
  decide s ~commit:false ~reason ~targets:(servers_upto s s.qidx)

let () =
  watchdog_hook :=
    fun s ->
      if s.cfg.vote_timeout > 0. then begin
        s.watchdog_epoch <- s.watchdog_epoch + 1;
        let epoch = s.watchdog_epoch in
        Transport.at (transport s) ~delay:s.cfg.vote_timeout (fun () ->
            if s.watchdog_epoch = epoch && s.decision = None then begin
              s.validation <- None;
              s.awaiting_master <- No_fetch;
              (* Past the last query (commit phase) every server is a
                 target. *)
              let k = min s.qidx (Array.length s.queries - 1) in
              decide s ~commit:false ~reason:Outcome.Timed_out
                ~targets:(servers_upto s k)
            end)
      end

let advance s next =
  s.qidx <- s.qidx + 1;
  if s.qidx < Array.length s.queries then begin
    s.phase <- Executing;
    send_execute s
  end
  else next ()

let start_commit s =
  Log.debug (fun m ->
      m "%s: commit phase over %d participants" s.name
        (List.length (all_servers s)));
  s.phase <- Committing;
  let tr = tracer s in
  if Tracer.enabled tr then begin
    close_round_span s ();
    s.phase_span <- Tracer.start tr ~parent:s.txn_span ~track:s.name "2pvc.prepare"
  end;
  if Registry.enabled (registry s) then s.commit_started_at <- now s;
  let validate = Scheme.validates_at_commit s.cfg.scheme s.cfg.level in
  s.commit_validates <- validate;
  s.master_fetched_round <- 0;
  (* Without validation, 2PVC "acts like 2PC" (Section V-C): integrity
     votes only, no version reconciliation. *)
  let v =
    Validation.create ~reconcile:validate ~participants:(all_servers s)
      ~with_integrity:true ()
  in
  s.validation <- Some v;
  let allow_read_only = s.cfg.read_only_optimization && not validate in
  List.iter
    (fun dst ->
      send s ~dst
        (Message.Commit_request
           {
             txn = s.txn.Transaction.id;
             round = Validation.round v;
             validate;
             allow_read_only;
           }))
    (all_servers s);
  arm_watchdog s

let validation s =
  match s.validation with
  | Some v -> v
  | None -> invalid_arg "Manager: no validation in progress"

let send_policy_updates s ~reply_with updates =
  let v = validation s in
  List.iter
    (fun (dst, policies) ->
      send s ~dst
        (Message.Policy_update
           {
             txn = s.txn.Transaction.id;
             round = Validation.round v;
             policies;
             reply_with;
           }))
    updates

(* Continuous: 2PV over the servers involved so far (Section V-A's use of
   2PV during execution). *)
let start_query_validation s =
  arm_watchdog s;
  s.phase <- Query_validating;
  let v =
    Validation.create ~participants:(servers_upto s s.qidx) ~with_integrity:false ()
  in
  s.validation <- Some v;
  let tr = tracer s in
  if Tracer.enabled tr then begin
    s.round_span <- Tracer.start tr ~parent:s.txn_span ~track:s.name "2pv.round";
    Tracer.set_attr tr s.round_span "round" (string_of_int (Validation.round v));
    Tracer.set_attr tr s.round_span "query" (string_of_int s.qidx)
  end;
  match s.cfg.level with
  | Consistency.Global -> fetch_master s Query_prefetch
  | Consistency.View ->
    List.iter
      (fun dst ->
        send s ~dst
          (Message.Validate_request
             { txn = s.txn.Transaction.id; round = Validation.round v }))
      (servers_upto s s.qidx)

let send_validate_requests s =
  let v = validation s in
  List.iter
    (fun dst ->
      send s ~dst
        (Message.Validate_request
           { txn = s.txn.Transaction.id; round = Validation.round v }))
    (Validation.awaiting v)

let resolve_query_validation s =
  let v = validation s in
  mark s (Printf.sprintf "sync:%s" s.txn.Transaction.id);
  let res = Validation.resolve v in
  close_round_span s ~attrs:[ ("resolution", Validation.resolution_name res) ] ();
  (match res with
  | Validation.Need_update _ ->
    let tr = tracer s in
    if Tracer.enabled tr then begin
      s.round_span <-
        Tracer.start tr ~parent:s.txn_span ~track:s.name "2pv.round";
      Tracer.set_attr tr s.round_span "round"
        (string_of_int (Validation.round v));
      Tracer.set_attr tr s.round_span "query" (string_of_int s.qidx)
    end
  | _ -> ());
  match res with
  | Validation.All_consistent_true ->
    s.validation <- None;
    advance s (fun () -> start_commit s)
  | Validation.Abort_proof ->
    s.validation <- None;
    abort_now s Outcome.Proof_failure
  | Validation.Abort_integrity -> assert false (* with_integrity = false *)
  | Validation.Need_update updates ->
    if Validation.round v > s.cfg.max_rounds then begin
      s.validation <- None;
      abort_now s Outcome.Rounds_exhausted
    end
    else begin
      send_policy_updates s ~reply_with:`Validate updates;
      arm_watchdog s
    end

let resolve_commit s =
  let v = validation s in
  mark s (Printf.sprintf "sync:%s" s.txn.Transaction.id);
  Log.debug (fun m -> m "%s: resolving round %d" s.name (Validation.round v));
  s.commit_rounds <- Validation.round v;
  let res = Validation.resolve v in
  close_round_span s ~attrs:[ ("resolution", Validation.resolution_name res) ] ();
  (match res with
  | Validation.Need_update _ ->
    let tr = tracer s in
    if Tracer.enabled tr then begin
      s.round_span <-
        Tracer.start tr ~parent:s.phase_span ~track:s.name "2pvc.validate";
      Tracer.set_attr tr s.round_span "round"
        (string_of_int (Validation.round v))
    end
  | _ -> ());
  match res with
  | Validation.Abort_integrity ->
    decide s ~commit:false ~reason:Outcome.Integrity_violation ~targets:(all_servers s)
  | Validation.Abort_proof ->
    decide s ~commit:false ~reason:Outcome.Proof_failure ~targets:(all_servers s)
  | Validation.All_consistent_true ->
    decide s ~commit:true ~reason:Outcome.Committed ~targets:(all_servers s)
  | Validation.Need_update updates ->
    if Validation.round v > s.cfg.max_rounds then
      decide s ~commit:false ~reason:Outcome.Rounds_exhausted ~targets:(all_servers s)
    else begin
      send_policy_updates s ~reply_with:`Commit updates;
      arm_watchdog s
    end

(* A 2PVC round is complete: consult the master first when global
   consistency demands it, then resolve. *)
let commit_round_complete s =
  let v = validation s in
  let need_fetch =
    s.cfg.level = Consistency.Global && s.commit_validates
    &&
    match s.cfg.master_mode with
    | `Once -> s.master_fetched_round = 0
    | `Every_round -> s.master_fetched_round < Validation.round v
  in
  if need_fetch then fetch_master s Commit_resolve else resolve_commit s

(* Incremental Punctual under view consistency: the version of every proof
   must match what previous queries of the same domain reported
   (Section V-C; we abort on any mismatch since either direction is
   phi-inconsistent). *)
let incremental_view_check s (proof : Proof.t) =
  match List.assoc_opt proof.Proof.domain s.versions_seen with
  | None ->
    s.versions_seen <-
      (proof.Proof.domain, proof.Proof.policy_version) :: s.versions_seen;
    true
  | Some v -> v = proof.Proof.policy_version

let on_execute_reply s (outcome : Message.exec_outcome) =
  let tr = tracer s in
  if Tracer.enabled tr && s.query_span <> Tracer.no_span then begin
    Tracer.finish tr
      ~attrs:
        [
          ( "outcome",
            match outcome with
            | Message.Exec_die -> "die"
            | Message.Executed { proof = Some p; _ } ->
              if p.Proof.result then "executed" else "proof_false"
            | Message.Executed { proof = None; _ } -> "executed" );
        ]
      s.query_span;
    s.query_span <- Tracer.no_span
  end;
  match outcome with
  | Message.Exec_die -> abort_now s Outcome.Wait_die
  | Message.Executed { proof; _ } -> (
    Option.iter (View.add s.view ~instant:s.qidx) proof;
    let proof_ok =
      match proof with Some p -> p.Proof.result | None -> true
    in
    match s.cfg.scheme with
    | Scheme.Deferred -> advance s (fun () -> start_commit s)
    | Scheme.Punctual ->
      if proof_ok then advance s (fun () -> start_commit s)
      else abort_now s Outcome.Proof_failure
    | Scheme.Incremental_punctual ->
      if not proof_ok then abort_now s Outcome.Proof_failure
      else begin
        let p = Option.get proof in
        match s.cfg.level with
        | Consistency.View ->
          if incremental_view_check s p then
            advance s (fun () -> start_commit s)
          else abort_now s Outcome.Version_inconsistency
        | Consistency.Global -> fetch_master s (Exec_check p)
      end
    | Scheme.Continuous -> start_query_validation s)

let on_master_reply s (policies : Policy.t list) =
  let what = s.awaiting_master in
  s.awaiting_master <- No_fetch;
  match what with
  | No_fetch -> invalid_arg "Manager: unsolicited master reply"
  | Exec_check proof ->
    let master_version =
      List.find_map
        (fun (p : Policy.t) ->
          if String.equal p.Policy.domain proof.Proof.domain then
            Some p.Policy.version
          else None)
        policies
    in
    if master_version = Some proof.Proof.policy_version then
      advance s (fun () -> start_commit s)
    else abort_now s Outcome.Version_inconsistency
  | Query_prefetch ->
    Validation.add_master (validation s) policies;
    send_validate_requests s
  | Commit_resolve ->
    let v = validation s in
    Validation.add_master v policies;
    s.master_fetched_round <- Validation.round v;
    resolve_commit s

let on_ack s ~from =
  if not (List.mem from s.acked) then begin
    s.acked <- from :: s.acked;
    if List.length s.acked = List.length s.decision_targets then begin
      mark s "log:end";
      finish s
    end
  end

let handle s ~src msg =
  match (s.phase, msg) with
  | Executing, Message.Execute_reply { outcome; _ } -> on_execute_reply s outcome
  | Query_validating, Message.Validate_reply { round; proofs; policies; _ } ->
    let v = validation s in
    if round <> Validation.round v then () (* stale; drop *)
    else begin
      (* All evaluations of this per-query 2PV belong to the current
         query's instant t_i. *)
      List.iter (View.add s.view ~instant:s.qidx) proofs;
      match
        Validation.add_reply v ~from:src ~integrity:true ~proofs ~policies
      with
      | `Wait -> ()
      | `Round_complete -> resolve_query_validation s
    end
  | Committing, Message.Commit_reply { round; integrity; read_only; proofs; policies; _ }
    ->
    let v = validation s in
    if round <> Validation.round v then ()
    else begin
      if read_only && not (List.mem src s.read_only) then
        s.read_only <- src :: s.read_only;
      (* Commit-time revalidations all belong to the commit instant. *)
      List.iter (View.add s.view ~instant:(Array.length s.queries)) proofs;
      match Validation.add_reply v ~from:src ~integrity ~proofs ~policies with
      | `Wait -> ()
      | `Round_complete -> commit_round_complete s
    end
  | (Executing | Query_validating | Committing), Message.Master_version_reply { policies; _ }
    ->
    on_master_reply s policies
  | Deciding, Message.Decision_ack _ -> on_ack s ~from:src
  | (Deciding | Finished), Message.Inquiry _ -> (
    match s.decision with
    | Some commit ->
      send s ~dst:src (Message.Decision { txn = s.txn.Transaction.id; commit })
    | None -> ())
  | Finished, Message.Decision_ack _ -> () (* late ack after inquiry resend *)
  | (Deciding | Finished),
    ( Message.Validate_reply _ | Message.Commit_reply _
    | Message.Master_version_reply _ ) ->
    (* Stragglers from a round the vote timeout already aborted. *)
    ()
  | _, msg ->
    invalid_arg
      (Printf.sprintf "TM %s: unexpected %s in this phase" s.name
         (Message.label msg))

let submit ?ts cluster cfg txn ~on_done =
  if txn.Transaction.queries = [] then
    invalid_arg "Manager.submit: transaction has no queries";
  let name = "tm-" ^ txn.Transaction.id in
  let transport = Cluster.transport cluster in
  let s =
    {
      cluster;
      cfg;
      txn;
      name;
      on_done;
      view = View.create ~txn:txn.Transaction.id;
      submitted_at = Option.value ~default:(Transport.now transport) ts;
      queries = Array.of_list txn.Transaction.queries;
      qidx = 0;
      phase = Executing;
      awaiting_master = No_fetch;
      watchdog_epoch = 0;
      validation = None;
      commit_validates = false;
      master_fetched_round = 0;
      versions_seen = [];
      decision = None;
      reason = Outcome.Committed;
      commit_rounds = 0;
      decision_targets = [];
      acked = [];
      read_only = [];
      txn_span = Tracer.no_span;
      query_span = Tracer.no_span;
      round_span = Tracer.no_span;
      phase_span = Tracer.no_span;
      commit_started_at = Float.nan;
      decided_at = Float.nan;
    }
  in
  Transport.register transport name (fun ~src msg -> handle s ~src msg);
  Transport.mark transport ~node:name "txn_start";
  let tr = Transport.tracer transport in
  if Tracer.enabled tr then begin
    s.txn_span <- Tracer.start tr ~track:name "txn";
    Tracer.set_attr tr s.txn_span "txn" txn.Transaction.id;
    Tracer.set_attr tr s.txn_span "scheme" (Scheme.name cfg.scheme);
    Tracer.set_attr tr s.txn_span "consistency" (Consistency.name cfg.level)
  end;
  send_execute s

let run_one cluster cfg txn =
  let result = ref None in
  submit cluster cfg txn ~on_done:(fun o -> result := Some o);
  ignore (Cluster.run cluster);
  match !result with
  | Some o -> o
  | None ->
    failwith
      (Printf.sprintf "transaction %s did not complete (simulation quiescent)"
         txn.Cloudtx_txn.Transaction.id)
