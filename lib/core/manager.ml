(* Thin driver binding {!Cloudtx_protocol.Tm_machine} to the simulated
   transport, clock and observability sinks.  All protocol decisions live
   in the machine; this file only interprets its actions. *)

module Transport = Cloudtx_sim.Transport
module Counter = Cloudtx_metrics.Counter
module Tracer = Cloudtx_obs.Tracer
module Registry = Cloudtx_obs.Registry
module Journal = Cloudtx_obs.Journal
module Transaction = Cloudtx_txn.Transaction
module Tm = Cloudtx_protocol.Tm_machine
module Codec = Cloudtx_protocol.Codec
module Codec_bin = Cloudtx_protocol.Codec_bin

let log_src = Logs.Src.create "cloudtx.manager" ~doc:"Transaction manager"

module Log = (val Logs.src_log log_src : Logs.LOG)

type master_mode = Tm.master_mode

type config = Tm.config = {
  scheme : Scheme.t;
  level : Consistency.level;
  master_mode : master_mode;
  max_rounds : int;
  vote_timeout : float;
  decision_retry : float;
  read_only_optimization : bool;
  snapshot_reads : bool;
  timeout_policy : Cloudtx_protocol.Timeout_policy.t;
}

let config = Tm.config

type driver = {
  cluster : Cluster.t;
  machine : Tm.t;
  cfg : Tm.config;
  name : string;
  txn_id : string;
  on_done : Outcome.t -> unit;
  dedup : bool;
  seen : (int, unit) Hashtbl.t; (* delivered wire seqs, for idempotence *)
  adaptive : bool; (* non-Fixed timeout policy: measure and feed RTTs *)
  rtt_sent : (string, float) Hashtbl.t;
      (* per-peer time of the latest outstanding send, consumed by the
         first delivery from that peer into an Rtt_sample input *)
  mutable machine_dead : bool;
      (* set by [crash]: volatile machine state is gone; pre-crash timers
         that fire later must not touch it *)
  mutable durable : (bool * Outcome.reason * string list) option;
      (* the force-logged decision record: (commit, reason, undelivered
         participants).  Survives a crash — [restart] re-drives the
         decision phase from it; [None] means presumed abort. *)
  mutable finished : bool; (* outcome delivered to [on_done]? *)
  (* Observability registers: span ids are immediate ints (Tracer.no_span
     when tracing is off); the float timestamps are only written when the
     registry is live, keeping the disabled path allocation-free. *)
  mutable txn_span : int;
  mutable query_span : int;
  mutable round_span : int; (* open 2pv.round / 2pvc.validate span *)
  mutable phase_span : int; (* open 2pvc.prepare / 2pvc.commit|abort span *)
  mutable commit_started_at : float;
  mutable decided_at : float;
}

let transport d = Cluster.transport d.cluster
let now d = Transport.now (transport d)
let tracer d = Transport.tracer (transport d)
let registry d = Transport.registry (transport d)
let journal d = Transport.journal (transport d)

(* Flight recorder: the input record followed immediately by its action
   records, all before any action is performed.  Nested dispatches are
   synchronous and happen inside [perform], so each input's actions are
   journaled contiguously and replay ({!Audit}) is a per-node FIFO.
   Binary journals skip the JSON tree entirely (Codec_bin emits straight
   into the journal's reused frame writer). *)
let journal_input j ~node input =
  match Journal.format j with
  | Journal.Jsonl ->
    Journal.record j ~node ~dir:"input"
      ~payload:(Codec.to_string (Codec.tm_input_to_json input))
  | Journal.Binary ->
    Journal.record_frame j ~node ~dir:"input" ~emit:(fun b ->
        Codec_bin.emit_tm_input_payload b input)

let journal_actions j ~node actions =
  match Journal.format j with
  | Journal.Jsonl ->
    List.iter
      (fun a ->
        Journal.record j ~node ~dir:"action"
          ~payload:(Codec.to_string (Codec.tm_action_to_json a)))
      actions
  | Journal.Binary ->
    List.iter
      (fun a ->
        Journal.record_frame j ~node ~dir:"action" ~emit:(fun b ->
            Codec_bin.emit_tm_action_payload b a))
      actions

let scheme_labels (cfg : config) =
  [
    ("scheme", Scheme.name cfg.scheme);
    ("consistency", Consistency.name cfg.level);
  ]

let perform_obs d (o : Tm.obs) =
  let tr = tracer d in
  match o with
  | Tm.Query_open { index; server } ->
    if Tracer.enabled tr then begin
      d.query_span <- Tracer.start tr ~parent:d.txn_span ~track:d.name "query";
      Tracer.set_attr tr d.query_span "index" (string_of_int index);
      Tracer.set_attr tr d.query_span "server" server
    end
  | Tm.Query_close { outcome } ->
    if Tracer.enabled tr && d.query_span <> Tracer.no_span then begin
      Tracer.finish tr ~attrs:[ ("outcome", outcome) ] d.query_span;
      d.query_span <- Tracer.no_span
    end
  | Tm.Round_open { parent; span_name; round; query } ->
    if Tracer.enabled tr then begin
      let parent =
        match parent with `Txn -> d.txn_span | `Phase -> d.phase_span
      in
      d.round_span <- Tracer.start tr ~parent ~track:d.name span_name;
      Tracer.set_attr tr d.round_span "round" (string_of_int round);
      Option.iter
        (fun q -> Tracer.set_attr tr d.round_span "query" (string_of_int q))
        query
    end
  | Tm.Round_close { resolution } ->
    if Tracer.enabled tr && d.round_span <> Tracer.no_span then begin
      let attrs = Option.map (fun r -> [ ("resolution", r) ]) resolution in
      Tracer.finish tr ?attrs d.round_span;
      d.round_span <- Tracer.no_span
    end
  | Tm.Phase_open { span_name; reason } ->
    if Tracer.enabled tr then begin
      d.phase_span <- Tracer.start tr ~parent:d.txn_span ~track:d.name span_name;
      Option.iter (fun r -> Tracer.set_attr tr d.phase_span "reason" r) reason
    end;
    if Registry.enabled (registry d) then begin
      match span_name with
      | "2pvc.prepare" -> d.commit_started_at <- now d
      | "2pvc.commit" | "2pvc.abort" -> d.decided_at <- now d
      | _ -> ()
    end
  | Tm.Phase_close ->
    if Tracer.enabled tr && d.phase_span <> Tracer.no_span then begin
      Tracer.finish tr d.phase_span;
      d.phase_span <- Tracer.no_span
    end
  | Tm.Txn_close { outcome; reason } ->
    if Tracer.enabled tr && d.txn_span <> Tracer.no_span then begin
      Tracer.finish tr
        ~attrs:[ ("outcome", outcome); ("reason", reason) ]
        d.txn_span;
      d.txn_span <- Tracer.no_span
    end

let finish d (cfg : config) ~committed ~reason ~commit_rounds =
  if d.finished then ()
  else begin
  d.finished <- true;
  let txn_id = d.txn_id in
  let counters = Transport.counters (transport d) in
  let reg = registry d in
  let submitted_at = Tm.submitted_at d.machine in
  if Registry.enabled reg then begin
    let labels = scheme_labels cfg in
    let finished_at = now d in
    Registry.incr reg "txn_total"
      (("outcome", if committed then "commit" else "abort") :: labels);
    Registry.observe reg "txn_latency_ms" labels (finished_at -. submitted_at);
    Registry.observe reg "commit_rounds" labels (float_of_int commit_rounds);
    Registry.observe reg "proofs_per_txn" labels
      (float_of_int (Counter.get counters ("proofs:" ^ txn_id)));
    if Float.is_finite d.commit_started_at then begin
      Registry.observe reg "phase_execute_ms" labels
        (d.commit_started_at -. submitted_at);
      if Float.is_finite d.decided_at then
        Registry.observe reg "phase_commit_ms" labels
          (d.decided_at -. d.commit_started_at)
    end;
    if Float.is_finite d.decided_at then
      Registry.observe reg "phase_decide_ms" labels (finished_at -. d.decided_at)
  end;
  let outcome =
    {
      Outcome.txn = txn_id;
      scheme = cfg.scheme;
      level = cfg.level;
      committed;
      reason;
      submitted_at;
      finished_at = now d;
      commit_rounds;
      proofs_evaluated = Counter.get counters ("proofs:" ^ txn_id);
      view = Tm.view d.machine;
    }
  in
  d.on_done outcome
  end

let rec perform d (cfg : config) (a : Tm.action) =
  match a with
  | Tm.Send { dst; msg } ->
    if d.adaptive && not (Hashtbl.mem d.rtt_sent dst) then
      Hashtbl.replace d.rtt_sent dst (now d);
    Transport.send (transport d) ~src:d.name ~dst msg
  | Tm.Arm_watchdog { epoch; delay } ->
    Transport.at (transport d) ~delay (fun () ->
        if not d.machine_dead then dispatch d cfg (Tm.Watchdog_fired { epoch }))
  | Tm.Arm_retry { delay } ->
    Transport.at (transport d) ~delay (fun () ->
        if not d.machine_dead then dispatch d cfg Tm.Retry_fired)
  | Tm.Force_log ->
    (* The decision record is now durable: remember it driver-side so a
       crashed coordinator's [restart] can re-drive the decision phase. *)
    (match Tm.decision d.machine with
    | Some commit ->
      d.durable <-
        Some (commit, Tm.reason d.machine, Tm.decision_targets d.machine)
    | None -> ());
    Counter.incr (Transport.counters (transport d)) "log_force:tm";
    if Registry.enabled (registry d) then
      Registry.incr (registry d) "log_force_total" [ ("site", "tm") ]
  | Tm.Mark label -> Transport.mark (transport d) ~node:d.name label
  | Tm.Obs o -> perform_obs d o
  | Tm.Finish { committed; reason; commit_rounds } ->
    Log.debug (fun m ->
        m "%s: finished %s (%s)" d.name
          (if committed then "COMMIT" else "ABORT")
          (Outcome.reason_name reason));
    finish d cfg ~committed ~reason ~commit_rounds

and dispatch d cfg input =
  let j = journal d in
  if Journal.enabled j then begin
    journal_input j ~node:d.name input;
    let actions = Tm.handle d.machine input in
    journal_actions j ~node:d.name actions;
    List.iter (perform d cfg) actions
  end
  else List.iter (perform d cfg) (Tm.handle d.machine input)

type handle = driver

let txn_id d = d.txn_id

(* Distinct servers of the transaction's queries, in first-use order —
   the set a resilience gate indicts or protects. *)
let txn_servers txn =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc (q : Cloudtx_txn.Query.t) ->
      if Hashtbl.mem seen q.Cloudtx_txn.Query.server then acc
      else begin
        Hashtbl.add seen q.Cloudtx_txn.Query.server ();
        q.Cloudtx_txn.Query.server :: acc
      end)
    [] txn.Transaction.queries
  |> List.rev

(* Fast-fail at submit: no machine, no protocol traffic, no create
   record — just the resilience event (already journaled by [admit]),
   the outcome metrics, and a dead handle whose crash/restart are
   no-ops. *)
let reject_fast cluster (cfg : config) txn ~submitted_at ~reason ~on_done =
  let transport = Cluster.transport cluster in
  let reg = Transport.registry transport in
  if Registry.enabled reg then
    Registry.incr reg "txn_total"
      (("outcome", "abort") :: scheme_labels cfg);
  let outcome =
    {
      Outcome.txn = txn.Transaction.id;
      scheme = cfg.scheme;
      level = cfg.level;
      committed = false;
      reason;
      submitted_at;
      finished_at = submitted_at;
      commit_rounds = 0;
      proofs_evaluated = 0;
      view = Cloudtx_protocol.View.create ~txn:txn.Transaction.id;
    }
  in
  let d =
    {
      cluster;
      machine = Tm.create cfg txn ~submitted_at;
      cfg;
      name = "tm-" ^ txn.Transaction.id;
      txn_id = txn.Transaction.id;
      on_done;
      dedup = false;
      seen = Hashtbl.create 1;
      adaptive = false;
      rtt_sent = Hashtbl.create 1;
      machine_dead = true;
      durable = None;
      finished = true;
      txn_span = Tracer.no_span;
      query_span = Tracer.no_span;
      round_span = Tracer.no_span;
      phase_span = Tracer.no_span;
      commit_started_at = Float.nan;
      decided_at = Float.nan;
    }
  in
  on_done outcome;
  d

let submit_handle ?ts ?(dedup = true) ?resilience cluster (cfg : config) txn
    ~on_done =
  if txn.Transaction.queries = [] then
    invalid_arg "Manager.submit: transaction has no queries";
  let name = "tm-" ^ txn.Transaction.id in
  let transport = Cluster.transport cluster in
  let submitted_at = Option.value ~default:(Transport.now transport) ts in
  match
    match resilience with
    | None -> Ok ()
    | Some r ->
      Resilience.admit r ~txn:txn.Transaction.id ~servers:(txn_servers txn)
        ~now:submitted_at
  with
  | Error `Admission ->
    reject_fast cluster cfg txn ~submitted_at
      ~reason:Outcome.Admission_rejected ~on_done
  | Error (`Breaker _) ->
    reject_fast cluster cfg txn ~submitted_at ~reason:Outcome.Breaker_open
      ~on_done
  | Ok () ->
  let on_done =
    match resilience with
    | None -> on_done
    | Some r ->
      let servers = txn_servers txn in
      fun (o : Outcome.t) ->
        Resilience.note_outcome r ~txn:txn.Transaction.id ~servers
          ~now:o.Outcome.finished_at ~reason:o.Outcome.reason;
        on_done o
  in
  let machine = Tm.create cfg txn ~submitted_at in
  let d =
    {
      cluster;
      machine;
      cfg;
      name;
      txn_id = txn.Transaction.id;
      on_done;
      dedup;
      seen = Hashtbl.create 32;
      adaptive =
        (match cfg.timeout_policy with
        | Cloudtx_protocol.Timeout_policy.Fixed -> false
        | Cloudtx_protocol.Timeout_policy.Adaptive _ -> true);
      rtt_sent = Hashtbl.create 8;
      machine_dead = false;
      durable = None;
      finished = false;
      txn_span = Tracer.no_span;
      query_span = Tracer.no_span;
      round_span = Tracer.no_span;
      phase_span = Tracer.no_span;
      commit_started_at = Float.nan;
      decided_at = Float.nan;
    }
  in
  Transport.register_seq transport name (fun ~src ~seq msg ->
      if d.machine_dead then ()
      else if d.dedup && Hashtbl.mem d.seen seq then
        Transport.mark transport ~node:name ("dedup:" ^ Message.label msg)
      else begin
        if d.dedup then Hashtbl.replace d.seen seq ();
        (* Measured request->first-reply RTT feeds the adaptive timeout
           policy's per-peer sketch; journaled as a machine input so
           replay sees identical estimates (and identical delays). *)
        if d.adaptive then begin
          match Hashtbl.find_opt d.rtt_sent src with
          | Some t0 ->
            Hashtbl.remove d.rtt_sent src;
            dispatch d cfg
              (Tm.Rtt_sample { peer = src; ms = Transport.now transport -. t0 })
          | None -> ()
        end;
        dispatch d cfg (Tm.Deliver { src; msg })
      end);
  Transport.mark transport ~node:name "txn_start";
  let tr = Transport.tracer transport in
  if Tracer.enabled tr then begin
    d.txn_span <- Tracer.start tr ~track:name "txn";
    Tracer.set_attr tr d.txn_span "txn" txn.Transaction.id;
    Tracer.set_attr tr d.txn_span "scheme" (Scheme.name cfg.scheme);
    Tracer.set_attr tr d.txn_span "consistency" (Consistency.name cfg.level)
  end;
  let j = Transport.journal transport in
  let actions = Tm.start machine in
  if Journal.enabled j then begin
    (match Journal.format j with
    | Journal.Jsonl ->
      Journal.record j ~node:name ~dir:"create"
        ~payload:
          (Codec.to_string
             (Cloudtx_policy.Json.Obj
                [
                  ("kind", Cloudtx_policy.Json.String "tm");
                  ("config", Codec.config_to_json cfg);
                  ("txn", Codec.transaction_to_json txn);
                  ("submitted_at", Cloudtx_policy.Json.Float submitted_at);
                ]))
    | Journal.Binary ->
      Journal.record_frame j ~node:name ~dir:"create" ~emit:(fun b ->
          Codec_bin.emit_create_tm b ~config:cfg ~txn ~submitted_at));
    journal_actions j ~node:name actions
  end;
  List.iter (perform d cfg) actions;
  d

let submit ?ts ?resilience cluster cfg txn ~on_done =
  ignore (submit_handle ?ts ?resilience cluster cfg txn ~on_done : handle)

let crash d =
  d.machine_dead <- true;
  Transport.crash (transport d) d.name;
  Transport.mark (transport d) ~node:d.name "crash"

(* Retransmission attempts before the coordinator stops pushing and relies
   on participant [Inquiry] pulls (their timers re-trigger independently),
   keeping a simulation with a permanently dead participant finite. *)
let max_decision_retries = 25

let restart d =
  let transport = transport d in
  Transport.recover transport d.name;
  Transport.unregister transport d.name;
  Transport.mark transport ~node:d.name "recover";
  match d.durable with
  | Some (commit, reason, targets) ->
    (* Decision survived in the forced log: re-drive the decision phase
       at-least-once, answering Inquiry pulls, until every participant
       still owed the decision has acknowledged it. *)
    let pending = Hashtbl.create 8 in
    List.iter (fun p -> Hashtbl.replace pending p ()) targets;
    let decision = Message.Decision { txn = d.txn_id; commit } in
    let deliver_outcome () =
      finish d d.cfg ~committed:commit ~reason
        ~commit_rounds:(Tm.commit_rounds d.machine)
    in
    Transport.register transport d.name (fun ~src msg ->
        match msg with
        | Message.Decision_ack { txn } when String.equal txn d.txn_id ->
          Hashtbl.remove pending src;
          if Hashtbl.length pending = 0 then deliver_outcome ()
        | Message.Inquiry { txn } when String.equal txn d.txn_id ->
          Transport.send transport ~src:d.name ~dst:src decision
        | _ -> ());
    let resend () =
      Hashtbl.iter
        (fun p () -> Transport.send transport ~src:d.name ~dst:p decision)
        pending
    in
    let retry = if d.cfg.decision_retry > 0. then d.cfg.decision_retry else 1. in
    let rec rearm attempts =
      Transport.at transport ~delay:retry (fun () ->
          if Hashtbl.length pending > 0 then begin
            resend ();
            if attempts < max_decision_retries then rearm (attempts + 1)
          end)
    in
    if Hashtbl.length pending = 0 then deliver_outcome ()
    else begin
      resend ();
      rearm 1
    end
  | None ->
    (* No durable decision record: Section V's presumed abort.  Answer
       any in-doubt participant's Inquiry with ABORT; the outcome is
       known now. *)
    Transport.register transport d.name (fun ~src msg ->
        match msg with
        | Message.Inquiry { txn } when String.equal txn d.txn_id ->
          Transport.send transport ~src:d.name ~dst:src
            (Message.Decision { txn = d.txn_id; commit = false })
        | _ -> ());
    finish d d.cfg ~committed:false ~reason:Outcome.Coordinator_crash
      ~commit_rounds:0

let run_one cluster cfg txn =
  let result = ref None in
  submit cluster cfg txn ~on_done:(fun o -> result := Some o);
  ignore (Cluster.run cluster);
  match !result with
  | Some o -> o
  | None ->
    failwith
      (Printf.sprintf "transaction %s did not complete (simulation quiescent)"
         txn.Cloudtx_txn.Transaction.id)
