(** Definitional checks for trusted transactions (Definitions 4-9).

    These predicates audit a recorded {!View} after the fact: given every
    proof evaluation a transaction's TM observed, do they satisfy the
    paper's definition of "trusted" for the scheme that ran?  The property
    tests assert that every transaction the implementation commits passes
    the corresponding check — the soundness obligation of Section V. *)

(** [trusted ~level ~latest view] — Definition 4: the latest proof per
    query is TRUE and the set is φ- or ψ-consistent. *)
val trusted :
  level:Consistency.level ->
  latest:(string -> Cloudtx_policy.Policy.version option) ->
  View.t ->
  bool

(** [check scheme ~level ~latest view] audits the evaluation history
    against the scheme's own definition:

    - Deferred (Def 5): final proofs TRUE and consistent.
    - Punctual (Def 6): every query's first evaluation TRUE, and final
      proofs TRUE and consistent.
    - Incremental punctual (Def 8): at each evaluation instant [ti], the
      view instance up to [ti] is TRUE and consistent.
    - Continuous (Def 9): at each instant [ti], every re-evaluation
      recorded at [ti] is TRUE and the instance is consistent.

    Returns [Error description] naming the first violated condition.  For
    the instant-indexed checks, [latest] is consulted with the versions
    that were current at the end of the run; under policy churn this makes
    the ψ check conservative (a committed transaction may be reported
    untrusted if the master moved after commit), which the callers
    account for. *)
val check :
  Scheme.t ->
  level:Consistency.level ->
  latest:(string -> Cloudtx_policy.Policy.version option) ->
  View.t ->
  (unit, string) result
