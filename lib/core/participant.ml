module Transport = Cloudtx_sim.Transport
module Counter = Cloudtx_metrics.Counter
module Server = Cloudtx_store.Server
module Query = Cloudtx_txn.Query
module Tpc = Cloudtx_txn.Tpc
module Proof = Cloudtx_policy.Proof
module Policy = Cloudtx_policy.Policy
module Replica = Cloudtx_policy.Replica
module Credential = Cloudtx_policy.Credential
module Lock_manager = Cloudtx_store.Lock_manager
module Wal = Cloudtx_store.Wal
module Tracer = Cloudtx_obs.Tracer
module Registry = Cloudtx_obs.Registry

let log_src = Logs.Src.create "cloudtx.participant" ~doc:"Data-server protocol node"

module Log = (val Logs.src_log log_src : Logs.LOG)

type pending = {
  p_query : Query.t;
  p_evaluate_proof : bool;
  p_reply_to : string;
  p_span : int;  (** Open [lock.wait] span; [Tracer.no_span] when off. *)
  p_blocked_at : float;
}

type txn_state = {
  ts : float;
  subject : string;
  credentials : Credential.t list;
  mutable queries : Query.t list; (* executed here, oldest first *)
  mutable integrity : bool option; (* the vote, once prepared *)
  mutable pending : pending option;
}

type t = {
  transport : Message.t Transport.t;
  server : Server.t;
  env : Proof.env;
  domain_of : string -> string;
  variant : Tpc.variant;
  ocsp_delay : (unit -> float) option;
  proof_cache : (string, string list) Hashtbl.t option;
  txns : (string, txn_state) Hashtbl.t;
}

let name t = Server.name t.server
let server t = t.server

let queries_of t ~txn =
  match Hashtbl.find_opt t.txns txn with
  | Some st -> st.queries
  | None -> []

let now t = Transport.now t.transport
let send t ~dst msg = Transport.send t.transport ~src:(name t) ~dst msg
let mark t label = Transport.mark t.transport ~node:(name t) label
let tracer t = Transport.tracer t.transport
let registry t = Transport.registry t.transport

(* Close a parked query's [lock.wait] span and record the wait. *)
let settle_wait t (p : pending) ~outcome =
  let tr = tracer t in
  if Tracer.enabled tr && p.p_span <> Tracer.no_span then
    Tracer.finish tr ~attrs:[ ("outcome", outcome) ] p.p_span;
  let reg = registry t in
  if Registry.enabled reg then
    Registry.observe reg "lock_wait_ms"
      [ ("server", name t) ]
      (now t -. p.p_blocked_at)

(* Simulated cost of the online credential-status checks one proof
   evaluation performs: one OCSP round-trip per CA-issued credential. *)
let status_check_delay t st =
  match t.ocsp_delay with
  | None -> 0.
  | Some sample ->
    List.fold_left
      (fun acc (c : Credential.t) ->
        match t.env.Proof.find_ca c.Credential.issuer with
        | Some _ -> acc +. sample ()
        | None -> acc)
      0. st.credentials

(* Send [msg] after the status-check work for [proofs] proof evaluations
   has completed. *)
let send_after_checks t st ~proofs ~dst msg =
  let delay = float_of_int proofs *. status_check_delay t st in
  if delay <= 0. then send t ~dst msg
  else Transport.at t.transport ~delay (fun () -> send t ~dst msg)

let state t ~txn ~ts ~subject ~credentials =
  match Hashtbl.find_opt t.txns txn with
  | Some st -> st
  | None ->
    let st = { ts; subject; credentials; queries = []; integrity = None; pending = None } in
    Hashtbl.add t.txns txn st;
    Server.begin_work t.server ~txn ~ts ~time:(now t);
    st

(* The administrative domain a query belongs to: the domain of its items,
   which must agree (the paper scopes each policy to one domain). *)
let domain_of_query t (q : Query.t) =
  match Query.items q with
  | [] -> invalid_arg (Printf.sprintf "query %s touches no data items" q.Query.id)
  | first :: rest ->
    let domain = t.domain_of first in
    List.iter
      (fun item ->
        if not (String.equal (t.domain_of item) domain) then
          invalid_arg
            (Printf.sprintf "query %s spans administrative domains" q.Query.id))
      rest;
    domain

let policy_for t domain =
  match Replica.get (Server.replica t.server) ~domain with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "server %s has no policy replica for domain %s" (name t)
         domain)

let evaluate_proof_fn t ~txn st (q : Query.t) =
  let domain = domain_of_query t q in
  let policy = policy_for t domain in
  let counters = Transport.counters t.transport in
  Counter.incr counters "proofs";
  Counter.incr counters ("proofs:" ^ txn);
  mark t (Printf.sprintf "proof_eval:%s:%s" txn q.Query.id);
  let tr = tracer t in
  let span =
    if Tracer.enabled tr then begin
      let span = Tracer.start tr ~track:(name t) "proof_eval" in
      Tracer.set_attr tr span "txn" txn;
      Tracer.set_attr tr span "query" q.Query.id;
      span
    end
    else Tracer.no_span
  in
  let request =
    { Proof.subject = st.subject; action = Query.action q; items = Query.items q }
  in
  let proof =
    Proof.evaluate ?cache:t.proof_cache ~query_id:q.Query.id ~server:(name t)
      ~policy ~creds:st.credentials ~env:t.env ~at:(now t) request
  in
  if Tracer.enabled tr then
    Tracer.finish tr
      ~attrs:
        [
          ("result", if proof.Proof.result then "true" else "false");
          ("version", string_of_int proof.Proof.policy_version);
        ]
      span;
  let reg = registry t in
  if Registry.enabled reg then
    Registry.incr reg "proofs_total" [ ("server", name t) ];
  proof

(* Distinct policies currently in force for [st]'s queries. *)
let policies_used t st =
  let policies = Hashtbl.create 4 in
  List.iter
    (fun (q : Query.t) ->
      let domain = domain_of_query t q in
      Hashtbl.replace policies domain (policy_for t domain))
    st.queries;
  Hashtbl.fold (fun _ p acc -> p :: acc) policies []
  |> List.sort (fun (a : Policy.t) b ->
         String.compare a.Policy.domain b.Policy.domain)

(* Evaluate (or re-evaluate) proofs for every query of [txn] executed
   here; also returns the distinct policies used. *)
let evaluate_all t ~txn st =
  let proofs = List.map (evaluate_proof_fn t ~txn st) st.queries in
  (proofs, policies_used t st)

let try_execute t ~txn st ~reply_to (q : Query.t) ~evaluate:should_evaluate =
  match
    Server.execute t.server ~txn ~reads:q.Query.reads ~writes:q.Query.writes
  with
  | Server.Blocked ->
    let tr = tracer t in
    let span =
      if Tracer.enabled tr then begin
        let span = Tracer.start tr ~track:(name t) "lock.wait" in
        Tracer.set_attr tr span "txn" txn;
        Tracer.set_attr tr span "query" q.Query.id;
        span
      end
      else Tracer.no_span
    in
    st.pending <-
      Some
        {
          p_query = q;
          p_evaluate_proof = should_evaluate;
          p_reply_to = reply_to;
          p_span = span;
          p_blocked_at = now t;
        };
    mark t (Printf.sprintf "blocked:%s:%s" txn q.Query.id)
  | Server.Die ->
    st.pending <- None;
    send t ~dst:reply_to
      (Message.Execute_reply { txn; query_id = q.Query.id; outcome = Message.Exec_die })
  | Server.Executed reads ->
    st.pending <- None;
    st.queries <- st.queries @ [ q ];
    let proof =
      if should_evaluate then Some (evaluate_proof_fn t ~txn st q) else None
    in
    send_after_checks t st
      ~proofs:(if should_evaluate then 1 else 0)
      ~dst:reply_to
      (Message.Execute_reply
         { txn; query_id = q.Query.id; outcome = Message.Executed { reads; proof } })

(* Lock releases may unblock parked queries of other transactions — and
   wait-die re-checks at promotion time may kill parked waiters, whose
   TMs must be told to abort. *)
let retry_promoted t (release : Lock_manager.release) =
  let killed = Hashtbl.create 4 in
  List.iter
    (fun (txn, _key) ->
      if not (Hashtbl.mem killed txn) then begin
        Hashtbl.add killed txn ();
        match Hashtbl.find_opt t.txns txn with
        | Some ({ pending = Some p; _ } as st) ->
          st.pending <- None;
          settle_wait t p ~outcome:"die";
          send t ~dst:p.p_reply_to
            (Message.Execute_reply
               {
                 txn;
                 query_id = p.p_query.Query.id;
                 outcome = Message.Exec_die;
               })
        | Some { pending = None; _ } | None -> ()
      end)
    release.Lock_manager.killed;
  let retried = Hashtbl.create 4 in
  List.iter
    (fun (txn, _key, _mode) ->
      if (not (Hashtbl.mem retried txn)) && not (Hashtbl.mem killed txn) then begin
        Hashtbl.add retried txn ();
        match Hashtbl.find_opt t.txns txn with
        | Some ({ pending = Some p; _ } as st) ->
          settle_wait t p ~outcome:"granted";
          try_execute t ~txn st ~reply_to:p.p_reply_to p.p_query
            ~evaluate:p.p_evaluate_proof
        | Some { pending = None; _ } | None -> ()
      end)
    release.Lock_manager.granted

let versions_of policies =
  List.map (fun (p : Policy.t) -> (p.Policy.domain, p.Policy.version)) policies

let handle t ~src msg =
  match msg with
  | Message.Execute { txn; ts; query; subject; credentials; evaluate_proof; snapshot }
    ->
    Log.debug (fun m ->
        m "%s: execute %s for %s (proof=%b snapshot=%b)" (name t) query.Query.id
          txn evaluate_proof snapshot);
    mark t (Printf.sprintf "query_start:%s:%s" txn query.Query.id);
    let st = state t ~txn ~ts ~subject ~credentials in
    if snapshot && query.Query.writes = [] then begin
      (* MVCC fast path: read the committed state as of the transaction's
         start, no locks, never blocks. *)
      let reads = Server.execute_snapshot t.server ~reads:query.Query.reads ~ts in
      st.queries <- st.queries @ [ query ];
      let proof =
        if evaluate_proof then Some (evaluate_proof_fn t ~txn st query) else None
      in
      send_after_checks t st
        ~proofs:(if evaluate_proof then 1 else 0)
        ~dst:src
        (Message.Execute_reply
           { txn; query_id = query.Query.id; outcome = Message.Executed { reads; proof } })
    end
    else try_execute t ~txn st ~reply_to:src query ~evaluate:evaluate_proof
  | Message.Validate_request { txn; round } -> (
    match Hashtbl.find_opt t.txns txn with
    | None -> invalid_arg (Printf.sprintf "%s: validate for unknown %s" (name t) txn)
    | Some st ->
      let proofs, policies = evaluate_all t ~txn st in
      send_after_checks t st ~proofs:(List.length proofs) ~dst:src
        (Message.Validate_reply { txn; round; proofs; policies }))
  | Message.Commit_request { txn; round; validate; allow_read_only } -> (
    match Hashtbl.find_opt t.txns txn with
    | None -> invalid_arg (Printf.sprintf "%s: commit for unknown %s" (name t) txn)
    | Some st ->
      if allow_read_only && (not validate) && Server.is_read_only t.server ~txn
      then begin
        (* Read-only fast path: vote READ, release immediately, skip the
           decision phase and all forced logging. *)
        let vote = Server.integrity_violations t.server ~txn = [] in
        let policies = policies_used t st in
        send t ~dst:src
          (Message.Commit_reply
             { txn; round; integrity = vote; read_only = true; proofs = []; policies });
        mark t (Printf.sprintf "read_only_release:%s" txn);
        let promotions = Server.forget t.server ~txn ~time:(now t) in
        Hashtbl.remove t.txns txn;
        retry_promoted t promotions
      end
      else begin
        let proofs, policies =
          if validate then evaluate_all t ~txn st
          else
            (* No validation: still report the versions in force, which the
               prepared record must carry. *)
            ([], policies_used t st)
        in
        let vote =
          match st.integrity with
          | Some vote -> vote
          | None ->
            let truth = List.for_all (fun (p : Proof.t) -> p.Proof.result) proofs in
            mark t (Printf.sprintf "log_force:prepared:%s" txn);
            let vote =
              Server.prepare t.server ~txn ~time:(now t) ~proof_truth:truth
                ~policy_versions:(versions_of policies)
            in
            st.integrity <- Some vote;
            vote
        in
        send_after_checks t st ~proofs:(List.length proofs) ~dst:src
          (Message.Commit_reply
             { txn; round; integrity = vote; read_only = false; proofs; policies })
      end)
  | Message.Policy_update { txn; round; policies; reply_with } -> (
    List.iter
      (fun p -> ignore (Replica.install (Server.replica t.server) p))
      policies;
    match Hashtbl.find_opt t.txns txn with
    | None -> invalid_arg (Printf.sprintf "%s: update for unknown %s" (name t) txn)
    | Some st -> (
      let proofs, used = evaluate_all t ~txn st in
      match reply_with with
      | `Validate ->
        send_after_checks t st ~proofs:(List.length proofs) ~dst:src
          (Message.Validate_reply { txn; round; proofs; policies = used })
      | `Commit ->
        let vote =
          match st.integrity with
          | Some vote -> vote
          | None -> invalid_arg "Policy_update(`Commit) before prepare"
        in
        send_after_checks t st ~proofs:(List.length proofs) ~dst:src
          (Message.Commit_reply
             { txn; round; integrity = vote; read_only = false; proofs; policies = used })))
  | Message.Decision { txn; commit } ->
    Log.debug (fun m ->
        m "%s: decision %s for %s" (name t)
          (if commit then "commit" else "abort")
          txn);
    let forced =
      match (t.variant, commit) with
      | Tpc.Basic, _ -> true
      | Tpc.Presumed_abort, commit -> commit
      | Tpc.Presumed_commit, commit -> not commit
    in
    if forced then mark t (Printf.sprintf "log_force:decision:%s" txn);
    let promotions =
      if commit then Server.commit ~forced t.server ~txn ~time:(now t)
      else Server.abort ~forced t.server ~txn ~time:(now t)
    in
    Server.finish t.server ~txn ~time:(now t);
    Hashtbl.remove t.txns txn;
    send t ~dst:src (Message.Decision_ack { txn });
    retry_promoted t promotions
  | Message.Propagate_policy { policy } -> (
    match Replica.install (Server.replica t.server) policy with
    | `Installed ->
      mark t
        (Printf.sprintf "policy_installed:%s:v%d" policy.Policy.domain
           policy.Policy.version)
    | `Stale -> ())
  | Message.Execute_reply _ | Message.Validate_reply _ | Message.Commit_reply _
  | Message.Decision_ack _ | Message.Master_version_request _
  | Message.Master_version_reply _ | Message.Inquiry _ ->
    invalid_arg (Printf.sprintf "%s: unexpected %s" (name t) (Message.label msg))

let create ~transport ~server ~env ~domain_of ?(variant = Tpc.Basic) ?ocsp_delay
    ?(proof_cache = false) () =
  let t =
    {
      transport;
      server;
      env;
      domain_of;
      variant;
      ocsp_delay;
      proof_cache = (if proof_cache then Some (Hashtbl.create 64) else None);
      txns = Hashtbl.create 16;
    }
  in
  Transport.register transport (Server.name server) (fun ~src msg ->
      handle t ~src msg);
  (* Store-layer hooks read the transport's tracer/registry dynamically:
     the CLI enables observability after the cluster is built, and the
     enabled checks keep the default path allocation-free. *)
  let node = Server.name server in
  Wal.set_observer (Server.wal server)
    (Some
       (fun ~time:_ ~forced ~tag ->
         let tr = Transport.tracer transport in
         if forced && Tracer.enabled tr then
           Tracer.instant tr ~track:node ~attrs:[ ("record", tag) ] "wal.force";
         let reg = Transport.registry transport in
         if Registry.enabled reg then begin
           Registry.incr reg "wal_append_total"
             [ ("server", node); ("record", tag) ];
           if forced then Registry.incr reg "log_force_total" [ ("site", node) ]
         end));
  Lock_manager.set_observer
    (Server.locks server)
    (Some
       {
         Lock_manager.on_acquire =
           (fun ~txn:_ ~key:_ ~mode:_ ~outcome ->
             let reg = Transport.registry transport in
             if Registry.enabled reg then
               Registry.incr reg "lock_acquire_total"
                 [
                   ("server", node);
                   ( "outcome",
                     match outcome with
                     | Lock_manager.Granted -> "granted"
                     | Lock_manager.Queued -> "queued"
                     | Lock_manager.Die -> "die" );
                 ]);
         on_promoted =
           (fun ~txn:_ ~key:_ ~mode:_ ->
             let reg = Transport.registry transport in
             if Registry.enabled reg then
               Registry.incr reg "lock_promoted_total" [ ("server", node) ]);
         on_killed =
           (fun ~txn:_ ~key:_ ->
             let reg = Transport.registry transport in
             if Registry.enabled reg then
               Registry.incr reg "lock_killed_total" [ ("server", node) ]);
       });
  t

let crash t =
  Hashtbl.reset t.txns;
  Server.crash t.server;
  Transport.crash t.transport (name t);
  mark t "crash"

let recover t =
  Transport.recover t.transport (name t);
  let in_doubt = Server.recover t.server ~time:(now t) in
  mark t "recover";
  List.iter
    (fun txn -> send t ~dst:("tm-" ^ txn) (Message.Inquiry { txn }))
    in_doubt
