(* Thin driver binding {!Cloudtx_protocol.Ps_machine} to a simulated
   server: store, lock manager, policy replica, WAL and the transport's
   observability sinks.  All protocol decisions live in the machine; this
   file only interprets its actions and feeds local results back. *)

module Transport = Cloudtx_sim.Transport
module Counter = Cloudtx_metrics.Counter
module Server = Cloudtx_store.Server
module Query = Cloudtx_txn.Query
module Tpc = Cloudtx_txn.Tpc
module Proof = Cloudtx_policy.Proof
module Policy = Cloudtx_policy.Policy
module Replica = Cloudtx_policy.Replica
module Credential = Cloudtx_policy.Credential
module Lock_manager = Cloudtx_store.Lock_manager
module Wal = Cloudtx_store.Wal
module Tracer = Cloudtx_obs.Tracer
module Registry = Cloudtx_obs.Registry
module Journal = Cloudtx_obs.Journal
module Ps = Cloudtx_protocol.Ps_machine
module Codec = Cloudtx_protocol.Codec
module Codec_bin = Cloudtx_protocol.Codec_bin

let log_src =
  Logs.Src.create "cloudtx.participant" ~doc:"Data-server protocol node"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* An open [lock.wait] span for a parked query. *)
type wait = { w_span : int; w_blocked_at : float }

type t = {
  transport : Message.t Transport.t;
  server : Server.t;
  env : Proof.env;
  domain_of : string -> string;
  machine : Ps.t;
  variant : Tpc.variant;
  mutable journaled : bool;
      (* create record emitted?  Participants are built before the CLI
         enables the journal, so the record is emitted lazily at the
         first journaled step (and again after a crash reset). *)
  ocsp_delay : (unit -> float) option;
  proof_cache : (string, string list) Hashtbl.t option;
  dedup : bool;
  seen : (int, unit) Hashtbl.t;
      (* wire seqs already delivered; duplicated or retransmitted copies
         are dropped here, before journaling, so journals stay replayable.
         Kept across crashes: the machine's [expected]-count NACK covers
         the state actually lost. *)
  inquiry_timeout : float;
  waits : (string, wait) Hashtbl.t; (* txn -> open lock.wait *)
  mutable releases : (string option * Lock_manager.release) list;
      (* lock releases queued during action interpretation, FIFO; drained
         only after the current input is fully interpreted so decision
         acks stay ahead of retried queries on the wire *)
}

let name t = Server.name t.server
let server t = t.server
let queries_of t ~txn = Ps.queries_of t.machine ~txn
let now t = Transport.now t.transport
let send t ~dst msg = Transport.send t.transport ~src:(name t) ~dst msg
let mark t label = Transport.mark t.transport ~node:(name t) label
let tracer t = Transport.tracer t.transport
let registry t = Transport.registry t.transport

(* Simulated cost of the online credential-status checks one proof
   evaluation performs: one OCSP round-trip per CA-issued credential. *)
let status_check_delay t credentials =
  match t.ocsp_delay with
  | None -> 0.
  | Some sample ->
    List.fold_left
      (fun acc (c : Credential.t) ->
        match t.env.Proof.find_ca c.Credential.issuer with
        | Some _ -> acc +. sample ()
        | None -> acc)
      0. credentials

(* The administrative domain a query belongs to: the domain of its items,
   which must agree (the paper scopes each policy to one domain). *)
let domain_of_query t (q : Query.t) =
  match Query.items q with
  | [] -> invalid_arg (Printf.sprintf "query %s touches no data items" q.Query.id)
  | first :: rest ->
    let domain = t.domain_of first in
    List.iter
      (fun item ->
        if not (String.equal (t.domain_of item) domain) then
          invalid_arg
            (Printf.sprintf "query %s spans administrative domains" q.Query.id))
      rest;
    domain

let policy_for t domain =
  match Replica.get (Server.replica t.server) ~domain with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "server %s has no policy replica for domain %s" (name t)
         domain)

let evaluate_proof_fn t ~txn ~subject ~credentials (q : Query.t) =
  let domain = domain_of_query t q in
  let policy = policy_for t domain in
  let counters = Transport.counters t.transport in
  Counter.incr counters "proofs";
  Counter.incr counters ("proofs:" ^ txn);
  mark t (Printf.sprintf "proof_eval:%s:%s" txn q.Query.id);
  let tr = tracer t in
  let span =
    if Tracer.enabled tr then begin
      let span = Tracer.start tr ~track:(name t) "proof_eval" in
      Tracer.set_attr tr span "txn" txn;
      Tracer.set_attr tr span "query" q.Query.id;
      span
    end
    else Tracer.no_span
  in
  let request =
    { Proof.subject; action = Query.action q; items = Query.items q }
  in
  let proof =
    Proof.evaluate ?cache:t.proof_cache ~query_id:q.Query.id ~server:(name t)
      ~policy ~creds:credentials ~env:t.env ~at:(now t) request
  in
  if Tracer.enabled tr then
    Tracer.finish tr
      ~attrs:
        [
          ("result", if proof.Proof.result then "true" else "false");
          ("version", string_of_int proof.Proof.policy_version);
        ]
      span;
  let reg = registry t in
  if Registry.enabled reg then
    Registry.incr reg "proofs_total" [ ("server", name t) ];
  proof

(* Distinct policies currently in force for [queries]. *)
let policies_used t queries =
  let policies = Hashtbl.create 4 in
  List.iter
    (fun (q : Query.t) ->
      let domain = domain_of_query t q in
      Hashtbl.replace policies domain (policy_for t domain))
    queries;
  Hashtbl.fold (fun _ p acc -> p :: acc) policies []
  |> List.sort (fun (a : Policy.t) b ->
         String.compare a.Policy.domain b.Policy.domain)

(* Satellite of the staleness story: how far this server's replica trails
   the policy master, per domain.  The master's version is published into
   the registry by {!Cluster.publish}; recompute the distance whenever we
   install (the gauge reads 0 until the first publish). *)
let note_staleness t (policies : Policy.t list) =
  let reg = registry t in
  if Registry.enabled reg then
    List.iter
      (fun (p : Policy.t) ->
        let domain = p.Policy.domain in
        match
          Registry.gauge reg "policy_master_version" [ ("domain", domain) ]
        with
        | None -> ()
        | Some master ->
          let held =
            match Replica.get (Server.replica t.server) ~domain with
            | Some q -> float_of_int q.Policy.version
            | None -> 0.
          in
          Registry.set_gauge reg "policy_staleness"
            [ ("server", name t); ("domain", domain) ]
            (Float.max 0. (master -. held)))
      policies

let settle_wait t ~txn ~outcome ~killed_by =
  match Hashtbl.find_opt t.waits txn with
  | None -> ()
  | Some w ->
    Hashtbl.remove t.waits txn;
    let tr = tracer t in
    if Tracer.enabled tr && w.w_span <> Tracer.no_span then begin
      let attrs = [ ("outcome", outcome) ] in
      let attrs =
        match killed_by with
        | None -> attrs
        | Some killer ->
          (* The link target: the killer TM's [txn] span carries
             [txn=<killer>] — join on this attribute. *)
          ("killed_by", killer) :: attrs
      in
      Tracer.finish tr ~attrs w.w_span
    end;
    let reg = registry t in
    if Registry.enabled reg then
      Registry.observe reg "lock_wait_ms"
        [ ("server", name t) ]
        (now t -. w.w_blocked_at)

(* Flight recorder: same input-then-actions-then-perform ordering as
   {!Manager.dispatch}, so each input's action records are contiguous in
   the journal and replay is a per-node FIFO. *)
let rec dispatch t input =
  let j = Transport.journal t.transport in
  if Journal.enabled j then begin
    if not t.journaled then begin
      t.journaled <- true;
      match Journal.format j with
      | Journal.Jsonl ->
        Journal.record j ~node:(name t) ~dir:"create"
          ~payload:
            (Codec.to_string
               (Cloudtx_policy.Json.Obj
                  [
                    ("kind", Cloudtx_policy.Json.String "ps");
                    ("variant", Codec.variant_to_json t.variant);
                    ("inquiry_timeout", Cloudtx_policy.Json.Float t.inquiry_timeout);
                  ]))
      | Journal.Binary ->
        Journal.record_frame j ~node:(name t) ~dir:"create" ~emit:(fun b ->
            Codec_bin.emit_create_ps b ~variant:t.variant
              ~inquiry_timeout:t.inquiry_timeout)
    end;
    (match Journal.format j with
    | Journal.Jsonl ->
      Journal.record j ~node:(name t) ~dir:"input"
        ~payload:(Codec.to_string (Codec.ps_input_to_json input))
    | Journal.Binary ->
      Journal.record_frame j ~node:(name t) ~dir:"input" ~emit:(fun b ->
          Codec_bin.emit_ps_input_payload b input));
    let actions = Ps.handle t.machine input in
    (match Journal.format j with
    | Journal.Jsonl ->
      List.iter
        (fun a ->
          Journal.record j ~node:(name t) ~dir:"action"
            ~payload:(Codec.to_string (Codec.ps_action_to_json a)))
        actions
    | Journal.Binary ->
      List.iter
        (fun a ->
          Journal.record_frame j ~node:(name t) ~dir:"action" ~emit:(fun b ->
              Codec_bin.emit_ps_action_payload b a))
        actions);
    List.iter (perform t) actions
  end
  else List.iter (perform t) (Ps.handle t.machine input)

and perform t (a : Ps.action) =
  match a with
  | Ps.Send { dst; msg; after_proofs; credentials } ->
    let delay = float_of_int after_proofs *. status_check_delay t credentials in
    if delay <= 0. then send t ~dst msg
    else Transport.at t.transport ~delay (fun () -> send t ~dst msg)
  | Ps.Begin_work { txn; ts } ->
    Server.begin_work t.server ~txn ~ts ~time:(now t)
  | Ps.Exec { txn; ts; query; evaluate; reply_to; snapshot } ->
    let result =
      if snapshot then
        (* MVCC fast path: read the committed state as of the transaction's
           start, no locks, never blocks. *)
        Ps.Executed (Server.execute_snapshot t.server ~reads:query.Query.reads ~ts)
      else
        match
          Server.execute t.server ~txn ~reads:query.Query.reads
            ~writes:query.Query.writes
        with
        | Server.Executed reads -> Ps.Executed reads
        | Server.Blocked -> Ps.Blocked
        | Server.Die -> Ps.Die
    in
    dispatch t (Ps.Exec_result { txn; query; evaluate; reply_to; result })
  | Ps.Eval { txn; subject; credentials; queries; with_proofs; with_policies; cont }
    ->
    let proofs =
      if with_proofs then
        List.map (evaluate_proof_fn t ~txn ~subject ~credentials) queries
      else []
    in
    let policies = if with_policies then policies_used t queries else [] in
    dispatch t (Ps.Evaluated { txn; proofs; policies; cont })
  | Ps.Check_read_only { txn; reply_to; round } ->
    let read_only = Server.is_read_only t.server ~txn in
    let integrity_ok =
      read_only && Server.integrity_violations t.server ~txn = []
    in
    dispatch t (Ps.Read_only_result { txn; reply_to; round; read_only; integrity_ok })
  | Ps.Prepare { txn; proof_truth; policy_versions } ->
    let vote =
      Server.prepare t.server ~txn ~time:(now t) ~proof_truth ~policy_versions
    in
    dispatch t (Ps.Prepared { txn; vote })
  | Ps.Apply { txn; commit; forced; writes = _ } ->
    (* [writes] is the machine's version stamp for the journal; the store
       derives the same installs from the workspace it already holds. *)
    let release =
      if commit then Server.commit ~forced t.server ~txn ~time:(now t)
      else Server.abort ~forced t.server ~txn ~time:(now t)
    in
    Server.finish t.server ~txn ~time:(now t);
    t.releases <- t.releases @ [ (Some txn, release) ]
  | Ps.Forget { txn } ->
    let release = Server.forget t.server ~txn ~time:(now t) in
    t.releases <- t.releases @ [ (Some txn, release) ]
  | Ps.Install { policies; announce } ->
    List.iter
      (fun (p : Policy.t) ->
        match Replica.install (Server.replica t.server) p with
        | `Installed ->
          if announce then
            mark t
              (Printf.sprintf "policy_installed:%s:v%d" p.Policy.domain
                 p.Policy.version)
        | `Stale -> ())
      policies;
    note_staleness t policies
  | Ps.Wait_open { txn; query_id } ->
    let tr = tracer t in
    let span =
      if Tracer.enabled tr then begin
        let span = Tracer.start tr ~track:(name t) "lock.wait" in
        Tracer.set_attr tr span "txn" txn;
        Tracer.set_attr tr span "query" query_id;
        span
      end
      else Tracer.no_span
    in
    Hashtbl.replace t.waits txn { w_span = span; w_blocked_at = now t }
  | Ps.Wait_close { txn; outcome; killed_by } ->
    settle_wait t ~txn ~outcome ~killed_by
  | Ps.Arm_inquiry { txn; epoch; delay } ->
    Transport.at t.transport ~delay (fun () ->
        if not (Transport.crashed t.transport (name t)) then begin
          dispatch t (Ps.Inquiry_fired { txn; epoch });
          drain_releases t
        end)
  | Ps.Mark label -> mark t label

(* Feed queued lock releases back as machine inputs.  A retried execute
   cannot release locks, but draining in a loop keeps this robust. *)
and drain_releases t =
  let rec loop () =
    match t.releases with
    | [] -> ()
    | (by, release) :: rest ->
      t.releases <- rest;
      dispatch t (Ps.Release { by; release });
      loop ()
  in
  loop ()

let handle t ~src msg =
  Log.debug (fun m -> m "%s: %s from %s" (name t) (Message.label msg) src);
  dispatch t (Ps.Deliver { src; msg });
  drain_releases t

let create ~transport ~server ~env ~domain_of ?(variant = Tpc.Basic) ?ocsp_delay
    ?(proof_cache = false) ?(dedup = true) ?(inquiry_timeout = 0.) () =
  let t =
    {
      transport;
      server;
      env;
      domain_of;
      machine =
        Ps.create ~name:(Server.name server) ~variant ~inquiry_timeout ();
      variant;
      journaled = false;
      ocsp_delay;
      proof_cache = (if proof_cache then Some (Hashtbl.create 64) else None);
      dedup;
      seen = Hashtbl.create 64;
      inquiry_timeout;
      waits = Hashtbl.create 8;
      releases = [];
    }
  in
  Transport.register_seq transport (Server.name server) (fun ~src ~seq msg ->
      if t.dedup && Hashtbl.mem t.seen seq then begin
        Counter.incr (Transport.counters transport) "dedup_dropped";
        mark t ("dedup:" ^ Message.label msg)
      end
      else begin
        if t.dedup then Hashtbl.replace t.seen seq ();
        handle t ~src msg
      end);
  (* Store-layer hooks read the transport's tracer/registry dynamically:
     the CLI enables observability after the cluster is built, and the
     enabled checks keep the default path allocation-free. *)
  let node = Server.name server in
  Wal.set_observer (Server.wal server)
    (Some
       (fun ~time:_ ~forced ~tag ->
         let tr = Transport.tracer transport in
         if forced && Tracer.enabled tr then
           Tracer.instant tr ~track:node ~attrs:[ ("record", tag) ] "wal.force";
         let reg = Transport.registry transport in
         if Registry.enabled reg then begin
           Registry.incr reg "wal_append_total"
             [ ("server", node); ("record", tag) ];
           if forced then Registry.incr reg "log_force_total" [ ("site", node) ]
         end));
  Lock_manager.set_observer
    (Server.locks server)
    (Some
       {
         Lock_manager.on_acquire =
           (fun ~txn:_ ~key:_ ~mode:_ ~outcome ->
             let reg = Transport.registry transport in
             if Registry.enabled reg then
               Registry.incr reg "lock_acquire_total"
                 [
                   ("server", node);
                   ( "outcome",
                     match outcome with
                     | Lock_manager.Granted -> "granted"
                     | Lock_manager.Queued -> "queued"
                     | Lock_manager.Die -> "die" );
                 ]);
         on_promoted =
           (fun ~txn:_ ~key:_ ~mode:_ ->
             let reg = Transport.registry transport in
             if Registry.enabled reg then
               Registry.incr reg "lock_promoted_total" [ ("server", node) ]);
         on_killed =
           (fun ~txn:_ ~key:_ ->
             let reg = Transport.registry transport in
             if Registry.enabled reg then
               Registry.incr reg "lock_killed_total" [ ("server", node) ]);
       });
  t

let crash t =
  Ps.reset t.machine;
  (* A repeated create record tells the auditor to restart this node's
     replay machine from scratch, mirroring the reset. *)
  t.journaled <- false;
  Hashtbl.reset t.waits;
  t.releases <- [];
  Server.crash t.server;
  Transport.crash t.transport (name t);
  mark t "crash"

let recover t =
  Transport.recover t.transport (name t);
  let in_doubt = Server.recover t.server ~time:(now t) in
  mark t "recover";
  (* Re-seed the fresh machine's protocol memory from the recovered log:
     decided transactions (so a retransmitted [Decision] is re-acked, not
     re-applied) and the in-doubt ones with the integrity vote their
     force-logged [Prepared] record carries. *)
  let entries = Wal.entries (Server.wal t.server) in
  let vote_of txn =
    List.fold_left
      (fun acc (e : Wal.entry) ->
        match e.Wal.record with
        | Wal.Prepared { txn = p; integrity_vote; _ } when String.equal p txn
          ->
          integrity_vote
        | _ -> acc)
      false entries
  in
  let writes_of txn =
    List.fold_left
      (fun acc (e : Wal.entry) ->
        match e.Wal.record with
        | Wal.Prepared { txn = p; writes; _ } when String.equal p txn ->
          List.map fst writes
        | _ -> acc)
      [] entries
  in
  let decided =
    List.fold_left
      (fun acc (e : Wal.entry) ->
        match e.Wal.record with
        | Wal.Decision { txn; _ } when not (List.mem txn acc) -> txn :: acc
        | _ -> acc)
      [] entries
    |> List.rev
  in
  dispatch t
    (Ps.Recovered
       {
         decided;
         in_doubt =
           List.map (fun txn -> (txn, vote_of txn, writes_of txn)) in_doubt;
       });
  drain_releases t
