(** Driver-side resilience: per-server circuit breakers and manager
    admission control.

    A {!t} is shared by every {!Manager.submit_handle ~resilience} on a
    cluster.  At submit the manager calls {!admit}; an [Error] becomes a
    deterministic fast-fail outcome ([Breaker_open] /
    [Admission_rejected]) with no machine created and no protocol
    traffic.  At completion the manager calls {!note_outcome}, which
    feeds the breakers their evidence: timeout-shaped outcomes
    ([Timed_out], [Budget_exhausted]) indict the transaction's servers;
    any other outcome proves them responsive and resets their streaks.

    Breaker lifecycle per server: [Closed] trips to [Open] after
    [failure_threshold] consecutive indictments; an [Open] breaker past
    its [cooldown] moves to [Half_open] at the next admit and adopts
    that transaction as its single probe; the probe's outcome closes or
    re-opens it.

    Every transition and rejection is journaled as a [dir="event"]
    record on the synthetic node ["resilience"] (JSON text in both
    journal formats) — the stream Watchtower's [breaker_flap] /
    [admission_storm] rules consume, live or on replay.  All decisions
    are pure functions of (breaker state, in-flight count, sim clock):
    no wall time, no RNG, so chaos verdicts stay seed-deterministic. *)

type breaker_state = Closed | Open | Half_open

val state_name : breaker_state -> string

type config = {
  failure_threshold : int;  (** Consecutive indictments to trip (>= 1). *)
  cooldown : float;  (** Open hold time in sim ms before probing (> 0). *)
  max_in_flight : int;  (** Admission bound; 0 disables admission. *)
}

(** Defaults: threshold 3, cooldown 200 ms, admission disabled. *)
val config :
  ?failure_threshold:int -> ?cooldown:float -> ?max_in_flight:int -> unit -> config

type t

(** [create ?journal ?registry cfg] — breakers start [Closed], nothing
    in flight.  Events are journaled to [journal] and counted in
    [registry] ([breaker_transitions_total], [admission_rejects_total],
    [resilience_in_flight]). *)
val create : ?journal:Cloudtx_obs.Journal.t -> ?registry:Cloudtx_obs.Registry.t -> config -> t

(** Gate one transaction.  [Ok ()] admits it (and counts it in flight —
    pair every [Ok] with a {!note_outcome}); [Error `Admission] is the
    in-flight bound, [Error (`Breaker server)] an open breaker. *)
val admit :
  t ->
  txn:string ->
  servers:string list ->
  now:float ->
  (unit, [ `Admission | `Breaker of string ]) result

(** Feed one admitted transaction's outcome back as breaker evidence and
    release its in-flight slot. *)
val note_outcome :
  t -> txn:string -> servers:string list -> now:float -> reason:Outcome.reason -> unit

(** Breaker states, sorted by server name (campaign convergence
    assertions). *)
val states : t -> (string * breaker_state) list

val in_flight : t -> int
val admission_rejects : t -> int

(** Fast-fails due to an open breaker. *)
val fail_fasts : t -> int
