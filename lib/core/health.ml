module Json = Cloudtx_policy.Json
module Codec = Cloudtx_protocol.Codec
module Codec_bin = Cloudtx_protocol.Codec_bin
module Tm = Cloudtx_protocol.Tm_machine
module Ps = Cloudtx_protocol.Ps_machine
module Monitor = Cloudtx_obs.Monitor
module Proof = Cloudtx_policy.Proof
module Policy = Cloudtx_policy.Policy

type kind = Tm_node of string  (** transaction id *) | Ps_node

(* Phase boundaries recovered from the journaled TM lifecycle: creation,
   the Obs Phase_open marks, and Finish — the same clock points
   [Manager] samples for the registry's phase histograms, so offline
   latency derivation reproduces the live metrics exactly. *)
type phase_times = {
  begun_at : float;
  mutable prepare_at : float option;
  mutable decided_at : float option;
}

type t = {
  monitor : Monitor.t;
  timeseries : Cloudtx_obs.Timeseries.t option;
  kinds : (string, kind) Hashtbl.t;
  phase_times : (string, phase_times) Hashtbl.t;
  mutable decode_errors : int;
}

let create ?timeseries monitor =
  {
    monitor;
    timeseries;
    kinds = Hashtbl.create 16;
    phase_times = Hashtbl.create 16;
    decode_errors = 0;
  }

let decode_errors t = t.decode_errors

let emit t ~seq ~time_ms ev =
  Monitor.observe t.monitor ~seq ~time_ms ev;
  match t.timeseries with
  | Some ts -> Cloudtx_obs.Timeseries.observe ts ~seq ~time_ms ev
  | None -> ()

let emit_masters t ~seq ~time_ms policies =
  List.iter
    (fun (p : Policy.t) ->
      emit t ~seq ~time_ms
        (Monitor.Master_version { domain = p.Policy.domain; version = p.Policy.version }))
    policies

let emit_proofs t ~seq ~time_ms ~txn proofs =
  List.iter
    (fun (p : Proof.t) ->
      emit t ~seq ~time_ms
        (Monitor.Proof_result
           {
             txn;
             node = p.Proof.server;
             domain = p.Proof.domain;
             version = p.Proof.policy_version;
             result = p.Proof.result;
           }))
    proofs

(* ------------------------------------------------------------------ *)
(* Per-record event extraction                                         *)
(* ------------------------------------------------------------------ *)

let on_create t ~seq ~time_ms ~node payload =
  match Result.bind (Json.member "kind" payload) Json.to_str with
  | Ok "tm" -> (
    let decoded =
      match Result.bind (Json.member "txn" payload) Codec.transaction_of_json with
      | Error _ -> None
      | Ok txn -> (
        match Result.bind (Json.member "config" payload) Codec.config_of_json with
        | Error _ -> None
        | Ok cfg -> Some (txn.Cloudtx_txn.Transaction.id, cfg))
    in
    match decoded with
    | None ->
      t.decode_errors <- t.decode_errors + 1;
      emit t ~seq ~time_ms (Monitor.Activity { node })
    | Some (txn, cfg) ->
      Hashtbl.replace t.kinds node (Tm_node txn);
      Hashtbl.replace t.phase_times txn
        { begun_at = time_ms; prepare_at = None; decided_at = None };
      emit t ~seq ~time_ms
        (Monitor.Txn_begin
           {
             txn;
             node;
             scheme = Scheme.name cfg.Tm.scheme;
             level = Consistency.name cfg.Tm.level;
           }))
  | Ok _ ->
    Hashtbl.replace t.kinds node Ps_node;
    emit t ~seq ~time_ms (Monitor.Activity { node })
  | Error _ ->
    t.decode_errors <- t.decode_errors + 1;
    emit t ~seq ~time_ms (Monitor.Activity { node })

let on_tm_input t ~seq ~time_ms ~node ~txn payload =
  (* Any input means the TM machine stepped. *)
  emit t ~seq ~time_ms (Monitor.Txn_step { txn });
  match Codec.tm_input_of_json payload with
  | Error _ -> t.decode_errors <- t.decode_errors + 1
  | Ok (Tm.Deliver { msg; _ }) -> (
    match msg with
    | Message.Master_version_reply { policies; _ } ->
      emit_masters t ~seq ~time_ms policies
    | Message.Validate_reply { txn; proofs; _ }
    | Message.Commit_reply { txn; proofs; _ } ->
      emit_proofs t ~seq ~time_ms ~txn proofs
    | _ -> ())
  | Ok (Tm.Watchdog_fired _ | Tm.Retry_fired | Tm.Rtt_sample _) -> ignore node

let emit_latency t ~seq ~time_ms txn =
  match Hashtbl.find_opt t.phase_times txn with
  | None -> ()
  | Some pt ->
    Hashtbl.remove t.phase_times txn;
    let diff a b = Option.map (fun x -> x -. b) a in
    emit t ~seq ~time_ms
      (Monitor.Txn_latency
         {
           txn;
           total_ms = time_ms -. pt.begun_at;
           execute_ms = diff pt.prepare_at pt.begun_at;
           commit_ms =
             (match (pt.prepare_at, pt.decided_at) with
             | Some p, Some d -> Some (d -. p)
             | _ -> None);
           decide_ms = Option.map (fun d -> time_ms -. d) pt.decided_at;
         })

let on_tm_action t ~seq ~time_ms ~node ~txn payload =
  match Codec.tm_action_of_json payload with
  | Error _ ->
    t.decode_errors <- t.decode_errors + 1;
    emit t ~seq ~time_ms (Monitor.Activity { node })
  | Ok (Tm.Obs (Tm.Phase_open { span_name; _ })) ->
    (match Hashtbl.find_opt t.phase_times txn with
    | Some pt -> (
      (* The same clock points Manager samples: prepare opening starts
         the commit phase; the commit/abort phase opening is the
         decision instant. *)
      match span_name with
      | "2pvc.prepare" -> pt.prepare_at <- Some time_ms
      | "2pvc.commit" | "2pvc.abort" -> pt.decided_at <- Some time_ms
      | _ -> ())
    | None -> ());
    emit t ~seq ~time_ms (Monitor.Activity { node })
  | Ok (Tm.Finish { committed; reason; _ }) ->
    emit_latency t ~seq ~time_ms txn;
    emit t ~seq ~time_ms
      (Monitor.Txn_end
         {
           txn;
           committed;
           reason = Outcome.reason_name reason;
           killed = reason = Outcome.Wait_die;
         })
  | Ok (Tm.Send { msg = Message.Policy_update { policies; _ }; _ }) ->
    (* Fresh bodies the TM relays came from the master. *)
    emit_masters t ~seq ~time_ms policies;
    emit t ~seq ~time_ms (Monitor.Activity { node })
  | Ok _ -> emit t ~seq ~time_ms (Monitor.Activity { node })

let on_ps_input t ~seq ~time_ms ~node payload =
  match Codec.ps_input_of_json payload with
  | Error _ ->
    t.decode_errors <- t.decode_errors + 1;
    emit t ~seq ~time_ms (Monitor.Activity { node })
  | Ok (Ps.Prepared { txn; vote }) ->
    emit t ~seq ~time_ms (Monitor.Vote { txn; node; vote })
  | Ok (Ps.Evaluated { txn; proofs; policies; _ }) ->
    emit_proofs t ~seq ~time_ms ~txn proofs;
    List.iter
      (fun (p : Policy.t) ->
        emit t ~seq ~time_ms
          (Monitor.Replica_version
             { node; domain = p.Policy.domain; version = p.Policy.version }))
      policies
  | Ok (Ps.Deliver { msg; _ }) -> (
    (match msg with
    | Message.Propagate_policy { policy } -> emit_masters t ~seq ~time_ms [ policy ]
    | Message.Policy_update { policies; _ } -> emit_masters t ~seq ~time_ms policies
    | _ -> ());
    emit t ~seq ~time_ms (Monitor.Activity { node }))
  | Ok _ -> emit t ~seq ~time_ms (Monitor.Activity { node })

let on_ps_action t ~seq ~time_ms ~node payload =
  match Codec.ps_action_of_json payload with
  | Error _ ->
    t.decode_errors <- t.decode_errors + 1;
    emit t ~seq ~time_ms (Monitor.Activity { node })
  | Ok (Ps.Install { policies; _ }) ->
    List.iter
      (fun (p : Policy.t) ->
        emit t ~seq ~time_ms
          (Monitor.Replica_version
             { node; domain = p.Policy.domain; version = p.Policy.version }))
      policies
  | Ok (Ps.Prepare { policy_versions; _ }) ->
    List.iter
      (fun (domain, version) ->
        emit t ~seq ~time_ms (Monitor.Replica_version { node; domain; version }))
      policy_versions
  | Ok _ -> emit t ~seq ~time_ms (Monitor.Activity { node })

(* dir="event" records: driver-side resilience events (breaker
   transitions, admission rejections) journaled as JSON text on the
   synthetic "resilience" node — decoded into the Watchtower's
   breaker_flap / admission_storm vocabulary.  Unknown event kinds pass
   through as plain activity (forward compatibility, not an error). *)
let on_event t ~seq ~time_ms ~node payload =
  let str k = Result.bind (Json.member k payload) Json.to_str in
  match str "event" with
  | Ok "breaker" -> (
    match (str "server", str "from", str "to") with
    | Ok server, Ok from_, Ok to_ ->
      emit t ~seq ~time_ms (Monitor.Breaker_transition { server; from_; to_ })
    | _ ->
      t.decode_errors <- t.decode_errors + 1;
      emit t ~seq ~time_ms (Monitor.Activity { node }))
  | Ok "admission" -> (
    match (str "txn", str "reason") with
    | Ok txn, Ok reason ->
      let server = Result.to_option (str "server") in
      emit t ~seq ~time_ms (Monitor.Admission_reject { txn; reason; server })
    | _ ->
      t.decode_errors <- t.decode_errors + 1;
      emit t ~seq ~time_ms (Monitor.Activity { node }))
  | Ok _ -> emit t ~seq ~time_ms (Monitor.Activity { node })
  | Error _ ->
    t.decode_errors <- t.decode_errors + 1;
    emit t ~seq ~time_ms (Monitor.Activity { node })

let feed_json t ~seq ~time_ms ~node ~dir payload =
  match dir with
  | "create" -> on_create t ~seq ~time_ms ~node payload
  | "event" -> on_event t ~seq ~time_ms ~node payload
  | "input" -> (
    match Hashtbl.find_opt t.kinds node with
    | Some (Tm_node txn) -> on_tm_input t ~seq ~time_ms ~node ~txn payload
    | Some Ps_node -> on_ps_input t ~seq ~time_ms ~node payload
    | None ->
      (* Node never created in this journal (e.g. a capped buffer dropped
         the create): classify by trying both decoders. *)
      (match Codec.ps_input_of_json payload with
      | Ok _ ->
        Hashtbl.replace t.kinds node Ps_node;
        on_ps_input t ~seq ~time_ms ~node payload
      | Error _ -> emit t ~seq ~time_ms (Monitor.Activity { node })))
  | "action" -> (
    match Hashtbl.find_opt t.kinds node with
    | Some (Tm_node txn) -> on_tm_action t ~seq ~time_ms ~node ~txn payload
    | Some Ps_node -> on_ps_action t ~seq ~time_ms ~node payload
    | None -> emit t ~seq ~time_ms (Monitor.Activity { node }))
  | _ ->
    t.decode_errors <- t.decode_errors + 1;
    emit t ~seq ~time_ms (Monitor.Activity { node })

let feed t ~seq ~time_ms ~node ~dir ~payload =
  match Json.parse payload with
  | Ok j -> feed_json t ~seq ~time_ms ~node ~dir j
  | Error _ ->
    t.decode_errors <- t.decode_errors + 1;
    emit t ~seq ~time_ms (Monitor.Activity { node })

(* Observer payloads arrive in the journal's own format: JSON text for a
   JSONL journal, [Codec_bin] bytes for a binary one. *)
let feed_bin t ~seq ~time_ms ~node ~dir ~payload =
  if String.equal dir "event" then
    (* Event frames carry JSON text as the raw payload, not Codec_bin
       bytes. *)
    match Json.parse payload with
    | Ok j -> on_event t ~seq ~time_ms ~node j
    | Error _ ->
      t.decode_errors <- t.decode_errors + 1;
      emit t ~seq ~time_ms (Monitor.Activity { node })
  else
    match Codec_bin.payload_of_string payload with
    | Ok p ->
      let dir =
        match p with
        | Codec_bin.Create_tm _ | Codec_bin.Create_ps _ -> "create"
        | Codec_bin.Tm_input _ | Codec_bin.Ps_input _ -> "input"
        | Codec_bin.Tm_action _ | Codec_bin.Ps_action _ -> "action"
      in
      feed_json t ~seq ~time_ms ~node ~dir (Codec_bin.payload_to_json p)
    | Error _ ->
      t.decode_errors <- t.decode_errors + 1;
      emit t ~seq ~time_ms (Monitor.Activity { node })

let attach ?timeseries journal monitor =
  let t = create ?timeseries monitor in
  let feed =
    match Cloudtx_obs.Journal.format journal with
    | Cloudtx_obs.Journal.Jsonl -> feed
    | Cloudtx_obs.Journal.Binary -> feed_bin
  in
  Cloudtx_obs.Journal.add_observer journal (fun ~seq ~time_ms ~node ~dir ~payload ->
      feed t ~seq ~time_ms ~node ~dir ~payload);
  t

(* ------------------------------------------------------------------ *)
(* Offline replay                                                      *)
(* ------------------------------------------------------------------ *)

let check_header line =
  match Json.parse line with
  | Error m -> Error (Printf.sprintf "line 1: bad journal header: %s" m)
  | Ok j -> (
    match Result.bind (Json.member "journal" j) Json.to_str with
    | Ok "cloudtx" -> Ok ()
    | Ok other -> Error (Printf.sprintf "line 1: journal kind %S unknown" other)
    | Error m -> Error (Printf.sprintf "line 1: bad journal header: %s" m))

let feed_line t ~lineno line =
  match Json.parse line with
  | Error m -> Error (Printf.sprintf "line %d: unparseable record: %s" lineno m)
  | Ok j -> (
    let ( let* ) = Result.bind in
    let field what r =
      Result.map_error
        (fun m -> Printf.sprintf "line %d: record without %s: %s" lineno what m)
        r
    in
    let* seq = field "seq" (Result.bind (Json.member "seq" j) Json.to_int) in
    let* time_ms =
      field "time_ms" (Result.bind (Json.member "time_ms" j) Json.to_float)
    in
    let* node = field "node" (Result.bind (Json.member "node" j) Json.to_str) in
    let* dir = field "dir" (Result.bind (Json.member "dir" j) Json.to_str) in
    let* payload = field "payload" (Json.member "payload" j) in
    feed_json t ~seq ~time_ms ~node ~dir payload;
    Ok ())

(* Format auto-detection via {!Journal_io}: a binary journal replays as
   the same canonical records. *)
let of_file ?timeseries path monitor =
  match Result.map (fun l -> l.Journal_io.lines) (Journal_io.of_file path) with
  | Error m -> Error m
  | Ok [] -> Error "empty journal"
  | Ok (header :: records) -> (
    match check_header header with
    | Error _ as e -> e
    | Ok () ->
      let t = create ?timeseries monitor in
      let rec go n lineno = function
        | [] -> Ok n
        | line :: rest -> (
          match feed_line t ~lineno line with
          | Ok () -> go (n + 1) (lineno + 1) rest
          | Error _ as e -> e)
      in
      go 0 2 records)
