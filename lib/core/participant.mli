(** Server-side protocol node.

    Wraps a {!Cloudtx_store.Server} with the behaviour the paper requires
    of a 2PV/2PVC participant: execute queries into a workspace (evaluating
    execution-time proofs for the punctual-family schemes), answer
    Prepare-to-Validate and Prepare-to-Commit with proofs, policy versions
    and an integrity vote (force-logging the prepare record), install
    policy updates and re-evaluate, and apply the final decision.

    Blocked queries (lock conflicts) are parked and retried automatically
    when a releasing transaction promotes their locks, so the TM never
    polls. *)

module Transport = Cloudtx_sim.Transport

type t

(** [create ~transport ~server ~env ~domain_of ()] registers the node
    under the server's name.  [domain_of] maps a data item to its
    administrative domain; [env] resolves credential issuers for proof
    evaluation; [variant] selects the decision-logging discipline
    (default {!Cloudtx_txn.Tpc.Basic}).

    [proof_cache] memoizes the inference step of proof evaluation (see
    {!Cloudtx_policy.Proof.evaluate}); truth values are unchanged, only
    repeated saturations are skipped. Default false.

    [ocsp_delay], when given, prices the paper's "online method" of
    checking credential status: each proof evaluation defers the
    participant's reply by one sampled delay per CA-issued credential it
    had to check (the responses still arrive in order per sender pair).
    Default: status checks are free, which is what Table I prices.

    [dedup] (default true) drops re-delivered wire messages on their
    transport sequence number, making delivery idempotent under message
    duplication and at-least-once decision retransmission.  The [false]
    escape hatch exists for chaos tests that need to demonstrate the
    failure mode dedup prevents.

    [inquiry_timeout] > 0 arms the termination protocol: a transaction
    silent for that long makes a prepared participant send [Inquiry] to
    its coordinator, and an unprepared one abort unilaterally.  Default 0
    (disabled — the paper's reliable-coordinator assumption). *)
val create :
  transport:Message.t Transport.t ->
  server:Cloudtx_store.Server.t ->
  env:Cloudtx_policy.Proof.env ->
  domain_of:(string -> string) ->
  ?variant:Cloudtx_txn.Tpc.variant ->
  ?ocsp_delay:(unit -> float) ->
  ?proof_cache:bool ->
  ?dedup:bool ->
  ?inquiry_timeout:float ->
  unit ->
  t

val name : t -> string
val server : t -> Cloudtx_store.Server.t

(** Queries executed here for [txn], oldest first. *)
val queries_of : t -> txn:string -> Cloudtx_txn.Query.t list

(** Fail-stop crash: wipes volatile state (workspaces, parked queries,
    lock table, unforced log tail) and stops receiving messages. *)
val crash : t -> unit

(** Restart after a crash: replays the WAL, re-locks in-doubt
    transactions' writes, re-seeds the protocol machine's decided-set and
    in-doubt votes, and sends an [Inquiry] to each in-doubt TM. *)
val recover : t -> unit
