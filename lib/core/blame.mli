(** Latency blame collector: flight-recorder records → critical-path
    timelines (DESIGN §9).

    The protocol-aware half of the blame engine.  It consumes the same
    per-record stream the {!Health} bridge does — live, as a journal
    observer ({!attach}), or offline, by replaying a journal file or its
    lines ({!of_file}/{!of_lines}, JSONL or binary via {!Journal_io}) —
    and reconstructs, per transaction, the causal timeline of
    {!Cloudtx_obs.Critical_path} segments:

    - The coordinator's machine steps are instantaneous in the
      discrete-event simulation (every action shares its input's
      timestamp), so wall-clock only passes {e between} consecutive
      records on the TM's node.  Each such gap is one segment, blamed on
      the record that closed it: a delivered [Master_version_reply]
      makes it a policy fetch, an [Execute_reply] a query round-trip, a
      [Validate_reply]/[Commit_reply] a 2PV/2PVC round, a
      [Decision_ack] decision propagation, a timer fire a
      retransmission/watchdog stall, an [Inquiry] an inquiry stall.
    - Server-side [Wait_open]/[Wait_close] records (wait-die parks) and
      [Eval]→[Evaluated] intervals for the transaction are carved out
      of the enclosing round-trip gap as [lock.wait] / [proof.eval]
      sub-segments, preserving the tiling.
    - [Phase_open] marks partition the segments into the same
      execute/commit/decide phases the registry histograms use, so the
      aggregate blame totals reconcile with [phase_*_ms].

    Because the segments tile [submit, finish], their durations sum to
    the end-to-end latency within {!Cloudtx_obs.Critical_path.slack_bound_ms}.
    The collector is a pure function of the record stream, so a live
    collection and an offline replay of the same journal render
    byte-identical output ({!to_json}). *)

type t

(** [create ()] — [keep_timelines] retains every finished timeline for
    {!timelines}/{!find} (explain paths; unbounded memory).  Default
    [false]: only bounded aggregate state plus the [top_k] (default 5)
    slowest timelines are kept. *)
val create : ?keep_timelines:bool -> ?top_k:int -> unit -> t

(** Feed one record with a JSON-text payload (JSONL observer shape). *)
val feed :
  t -> seq:int -> time_ms:float -> node:string -> dir:string -> payload:string -> unit

(** Feed one record with a [Codec_bin] payload (binary observer shape). *)
val feed_bin :
  t -> seq:int -> time_ms:float -> node:string -> dir:string -> payload:string -> unit

(** [attach journal] registers a collector on the journal's observer
    list ({!Cloudtx_obs.Journal.add_observer}), dispatching on the
    journal's format — the live path.  Composes with {!Health.attach}. *)
val attach : ?keep_timelines:bool -> ?top_k:int -> Cloudtx_obs.Journal.t -> t

(** Replay journal lines (header first).  [Error] names the first bad
    line. *)
val of_lines :
  ?keep_timelines:bool -> ?top_k:int -> string list -> (t, string) result

(** Replay a journal file, auto-detecting JSONL vs binary via
    {!Journal_io.of_file}; [Error] names the first undecodable frame or
    line. *)
val of_file :
  ?keep_timelines:bool -> ?top_k:int -> string -> (t, string) result

(** Transactions that reached [Finish]. *)
val finished : t -> int

(** Transactions still open at the end of the stream (not aggregated). *)
val unfinished : t -> int

(** Records whose payload failed to decode. *)
val decode_errors : t -> int

val agg : t -> Cloudtx_obs.Critical_path.agg

(** Finished timelines in finish order (empty unless [keep_timelines]). *)
val timelines : t -> Cloudtx_obs.Critical_path.timeline list

(** Lookup one finished transaction (requires [keep_timelines]). *)
val find : t -> txn:string -> Cloudtx_obs.Critical_path.timeline option

(** The slowest finished transaction (available regardless of
    [keep_timelines] — the top-k slowest always retain timelines). *)
val slowest : t -> Cloudtx_obs.Critical_path.timeline option

(** Finished timelines whose segments fail to cover the end-to-end
    latency within the documented slack (analysis violation: exit 1). *)
val uncovered : t -> Cloudtx_obs.Critical_path.timeline list

(** Deterministic blame report (aggregate + slowest), byte-identical
    between live collection and offline replay of the same journal. *)
val to_json : t -> string

(** The markdown blame section ({!Cloudtx_obs.Critical_path.agg_to_markdown}
    plus the collector's counters) for [cloudtx report]/[blame --md]. *)
val to_markdown_lines : t -> string list
