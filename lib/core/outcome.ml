(* Re-export: transaction outcomes live in the sans-IO protocol core. *)
include Cloudtx_protocol.Outcome
