module Proof = Cloudtx_policy.Proof

let all_true proofs = List.for_all (fun (p : Proof.t) -> p.Proof.result) proofs

let trusted ~level ~latest view =
  let proofs = View.current view in
  proofs <> [] && all_true proofs && Consistency.consistent level ~latest proofs

let check scheme ~level ~latest view =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let final_ok () =
    let proofs = View.current view in
    if proofs = [] then fail "empty view"
    else if not (all_true proofs) then fail "a final proof is FALSE"
    else if not (Consistency.consistent level ~latest proofs) then
      fail "final proofs are %s-inconsistent" (Consistency.name level)
    else Ok ()
  in
  let instances_ok () =
    (* At each evaluation instant, the instance must be TRUE and
       consistent (Definitions 8 and 9 quantify over all t_i). *)
    let rec go = function
      | [] -> Ok ()
      | ti :: rest ->
        let instance = View.instance_at view ~instant:ti in
        if not (all_true instance) then
          fail "instance t_%d contains a FALSE proof" ti
        else if not (Consistency.consistent level ~latest instance) then
          fail "instance t_%d is %s-inconsistent" ti (Consistency.name level)
        else go rest
    in
    go (View.instants view)
  in
  match scheme with
  | Scheme.Deferred -> final_ok ()
  | Scheme.Punctual ->
    (* Def 6 additionally requires eval(f, ti) at each query's own
       evaluation: the first recorded evaluation per query must be TRUE. *)
    let firsts = Hashtbl.create 8 in
    List.iter
      (fun (p : Proof.t) ->
        if not (Hashtbl.mem firsts p.Proof.query_id) then
          Hashtbl.add firsts p.Proof.query_id p)
      (View.all view);
    let punctual_ok =
      Hashtbl.fold (fun _ (p : Proof.t) acc -> acc && p.Proof.result) firsts true
    in
    if not punctual_ok then
      Error "a query's execution-time proof was FALSE"
    else final_ok ()
  | Scheme.Incremental_punctual | Scheme.Continuous -> instances_ok ()
