(** Format-agnostic journal loading and conversion.

    The flight recorder writes journals in two formats (JSONL and
    binary; see [Cloudtx_obs.Journal]).  This module is the single
    choke point every consumer uses to read one: it auto-detects the
    format (binary magic sniff) and decodes binary journals to the {e
    byte-identical} canonical JSONL lines a JSONL journal would have
    recorded — so {!Audit}, {!Certify} and {!Health} run the exact same
    line-based replay regardless of the on-disk format, and their
    verdicts cannot drift between formats by construction. *)

module Journal = Cloudtx_obs.Journal

type t = {
  format : Journal.format;  (** Detected input format. *)
  version : int;
      (** Journal format version from the header (best-effort [0] for a
          JSONL journal with an unreadable header — consumers run their
          own strict header checks). *)
  lines : string list;
      (** Canonical JSONL: header line first, then one line per record. *)
  torn_bytes : int;
      (** Bytes of an incomplete trailing binary frame that were
          tolerated and discarded (longest-valid-prefix); [0] for JSONL
          or a cleanly-ended binary journal. *)
}

(** Load a journal from raw contents / from a file.  Binary decode
    errors name the first bad frame (and the seq it carried or was
    expected to carry). *)
val of_contents : string -> (t, string) result

val of_file : string -> (t, string) result

(** [convert ~to_ contents] re-encodes a whole journal.  Same-format
    conversion is the identity; binary→JSONL is {!of_contents}'s
    canonical lines; JSONL→binary re-encodes every payload through the
    typed codec and refuses journals whose version is not current
    (older versions encode some records differently, and a silent
    upgrade would break the auditor's byte-exact replay). *)
val convert : to_:Journal.format -> string -> (string, string) result
