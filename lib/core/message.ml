(* Re-export: the wire vocabulary lives in the sans-IO protocol core. *)
include Cloudtx_protocol.Message
