(* Driver-side resilience: per-server circuit breakers and manager
   admission control.  Pure bookkeeping over evidence the manager already
   has (transaction outcomes), so verdicts stay a deterministic function
   of the simulation — breaker state never consults wall clocks or RNG.

   Breaker lifecycle (per server):

     Closed --consecutive timeout evidence >= threshold--> Open
     Open   --cooldown elapsed, next admit--> Half_open (one probe)
     Half_open --probe succeeds--> Closed
     Half_open --probe times out--> Open (cooldown restarts)

   Open breakers fail transactions fast at submit ([Breaker_open]);
   admission control bounds in-flight transactions and rejects the
   overflow deterministically ([Admission_rejected]).  Every breaker
   transition and admission reject is journaled as a dir="event" record
   on the synthetic node "resilience" (JSON text in both journal
   formats), which is how Watchtower sees them live and offline. *)

module Journal = Cloudtx_obs.Journal
module Registry = Cloudtx_obs.Registry

type breaker_state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = {
  failure_threshold : int;
  cooldown : float;
  max_in_flight : int;
}

let config ?(failure_threshold = 3) ?(cooldown = 200.) ?(max_in_flight = 0) ()
    =
  if failure_threshold < 1 then
    invalid_arg "Resilience.config: failure_threshold must be >= 1";
  if cooldown <= 0. then
    invalid_arg "Resilience.config: cooldown must be positive";
  if max_in_flight < 0 then
    invalid_arg "Resilience.config: max_in_flight must be >= 0";
  { failure_threshold; cooldown; max_in_flight }

type breaker = {
  server : string;
  mutable state : breaker_state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable probe : string option; (* txn probing while Half_open *)
}

type t = {
  cfg : config;
  journal : Journal.t;
  registry : Registry.t;
  breakers : (string, breaker) Hashtbl.t;
  mutable in_flight : int;
  mutable admission_rejects : int;
  mutable fail_fasts : int;
}

let create ?(journal = Journal.noop) ?(registry = Registry.noop) cfg =
  {
    cfg;
    journal;
    registry;
    breakers = Hashtbl.create 8;
    in_flight = 0;
    admission_rejects = 0;
    fail_fasts = 0;
  }

let breaker t server =
  match Hashtbl.find_opt t.breakers server with
  | Some b -> b
  | None ->
    let b =
      {
        server;
        state = Closed;
        consecutive_failures = 0;
        opened_at = Float.neg_infinity;
        probe = None;
      }
    in
    Hashtbl.add t.breakers server b;
    b

let states t =
  Hashtbl.fold (fun server b acc -> (server, b.state) :: acc) t.breakers []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let in_flight t = t.in_flight
let admission_rejects t = t.admission_rejects
let fail_fasts t = t.fail_fasts

(* ------------------------------------------------------------------ *)
(* Event journaling                                                    *)
(* ------------------------------------------------------------------ *)

let journal_event t emit =
  if Journal.enabled t.journal then
    Journal.record_bytes t.journal ~node:"resilience" ~dir:"event" ~emit

let note_transition t b ~to_ =
  let from = b.state in
  b.state <- to_;
  if Registry.enabled t.registry then
    Registry.incr t.registry "breaker_transitions_total"
      [ ("server", b.server); ("to", state_name to_) ];
  journal_event t (fun buf ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"event\":\"breaker\",\"server\":%S,\"from\":%S,\"to\":%S}"
           b.server (state_name from) (state_name to_)))

let journal_reject t ~txn ~reason ~server =
  journal_event t (fun buf ->
      Buffer.add_string buf
        (Printf.sprintf "{\"event\":\"admission\",\"txn\":%S,\"reason\":%S" txn
           reason);
      (match server with
      | Some s -> Buffer.add_string buf (Printf.sprintf ",\"server\":%S" s)
      | None -> ());
      Buffer.add_char buf '}')

let set_in_flight_gauge t =
  if Registry.enabled t.registry then
    Registry.set_gauge t.registry "resilience_in_flight" []
      (float_of_int t.in_flight)

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

(* [admit t ~txn ~servers ~now] — gate one transaction at submit.  The
   decision is deterministic in (breaker states, in-flight count, now).
   An open breaker past its cooldown moves to Half_open and adopts this
   transaction as its probe. *)
let admit t ~txn ~servers ~now =
  if t.cfg.max_in_flight > 0 && t.in_flight >= t.cfg.max_in_flight then begin
    t.admission_rejects <- t.admission_rejects + 1;
    if Registry.enabled t.registry then
      Registry.incr t.registry "admission_rejects_total"
        [ ("reason", "admission-rejected") ];
    journal_reject t ~txn ~reason:"admission-rejected" ~server:None;
    Error `Admission
  end
  else begin
    let blocking =
      List.find_opt
        (fun server ->
          let b = breaker t server in
          match b.state with
          | Closed -> false
          | Half_open ->
            (* One probe at a time: others fail fast until it resolves. *)
            b.probe <> None
          | Open ->
            if now >= b.opened_at +. t.cfg.cooldown then begin
              note_transition t b ~to_:Half_open;
              false
            end
            else true)
        servers
    in
    match blocking with
    | Some server ->
      t.fail_fasts <- t.fail_fasts + 1;
      if Registry.enabled t.registry then
        Registry.incr t.registry "admission_rejects_total"
          [ ("reason", "breaker-open") ];
      journal_reject t ~txn ~reason:"breaker-open" ~server:(Some server);
      Error (`Breaker server)
    | None ->
      (* Adopt this txn as the probe of every Half_open breaker it
         touches. *)
      List.iter
        (fun server ->
          let b = breaker t server in
          if b.state = Half_open && b.probe = None then b.probe <- Some txn)
        servers;
      t.in_flight <- t.in_flight + 1;
      set_in_flight_gauge t;
      Ok ()
  end

(* ------------------------------------------------------------------ *)
(* Evidence                                                            *)
(* ------------------------------------------------------------------ *)

(* Timeout-shaped outcomes indict the transaction's servers; everything
   else (commits, policy/integrity aborts, wait-die) proves the servers
   were responsive and resets their failure streaks. *)
let is_failure_evidence (reason : Outcome.reason) =
  match reason with
  | Outcome.Timed_out | Outcome.Budget_exhausted -> true
  | Outcome.Committed | Outcome.Integrity_violation | Outcome.Proof_failure
  | Outcome.Version_inconsistency | Outcome.Wait_die
  | Outcome.Rounds_exhausted | Outcome.Coordinator_crash
  | Outcome.Breaker_open | Outcome.Admission_rejected -> false

let note_outcome t ~txn ~servers ~now ~reason =
  t.in_flight <- max 0 (t.in_flight - 1);
  set_in_flight_gauge t;
  let failure = is_failure_evidence reason in
  List.iter
    (fun server ->
      let b = breaker t server in
      let was_probe =
        match b.probe with Some p -> String.equal p txn | None -> false
      in
      if was_probe then b.probe <- None;
      if failure then begin
        b.consecutive_failures <- b.consecutive_failures + 1;
        match b.state with
        | Closed ->
          if b.consecutive_failures >= t.cfg.failure_threshold then begin
            b.opened_at <- now;
            note_transition t b ~to_:Open
          end
        | Half_open ->
          if was_probe then begin
            (* The probe struck out: back to Open, cooldown restarts. *)
            b.opened_at <- now;
            note_transition t b ~to_:Open
          end
        | Open -> b.opened_at <- now
      end
      else begin
        b.consecutive_failures <- 0;
        match b.state with
        | Half_open ->
          if was_probe then note_transition t b ~to_:Closed
        | Closed | Open -> ()
      end)
    servers
