module Transport = Cloudtx_sim.Transport
module Admin = Cloudtx_policy.Admin

type t = {
  transport : Message.t Transport.t;
  name : string;
  admins : (string * Admin.t) list;
}

let handle t ~src msg =
  match msg with
  | Message.Master_version_request { txn } ->
    let policies = List.map (fun (_, a) -> Admin.latest a) t.admins in
    Transport.send t.transport ~src:t.name ~dst:src
      (Message.Master_version_reply { txn; policies })
  | _ ->
    invalid_arg
      (Printf.sprintf "master %s: unexpected %s" t.name (Message.label msg))

let create ~transport ~name ~admins =
  let t =
    { transport; name; admins = List.map (fun a -> (Admin.domain a, a)) admins }
  in
  Transport.register transport name (fun ~src msg -> handle t ~src msg);
  t

let name t = t.name
let admin t ~domain = List.assoc_opt domain t.admins

let latest_versions t =
  List.map (fun (d, a) -> (d, Admin.latest_version a)) t.admins

let latest t ~domain = Option.map Admin.latest_version (admin t ~domain)
