(* Re-export: proof-scheme taxonomy lives in the sans-IO protocol core. *)
include Cloudtx_protocol.Scheme
