(** The master policy server.

    Global consistency needs "some master server on the system which knows
    the latest policy version" — this node hosts the {!Cloudtx_policy.Admin}
    authority of every domain and answers version requests with the latest
    policies (bodies included, so a stale participant can be updated
    without a second fetch). *)

module Transport = Cloudtx_sim.Transport

type t

val create :
  transport:Message.t Transport.t ->
  name:string ->
  admins:Cloudtx_policy.Admin.t list ->
  t

val name : t -> string

val admin : t -> domain:string -> Cloudtx_policy.Admin.t option

(** Latest version per domain, the ψ-consistency reference. *)
val latest_versions : t -> (string * Cloudtx_policy.Policy.version) list

val latest : t -> domain:string -> Cloudtx_policy.Policy.version option
