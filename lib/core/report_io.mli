(** Building {!Cloudtx_obs.Report}s from files.

    [Obs] owns the report data and its renderings but cannot parse JSON
    (the parser lives in [Cloudtx_policy.Json], above it in the
    dependency order), so the file-facing constructors live here:

    - {!of_journal} replays a flight-recorder journal (either format)
      through {!Health} into a fresh monitor + {!Cloudtx_obs.Timeseries}
      — the offline path;
    - {!of_snapshot} reconstructs the report from a [--metrics-out]
      snapshot JSONL ({!Cloudtx_obs.Timeseries.to_jsonl}) — the live
      path's artifact.

    The two must agree: a report built either way over the same run
    renders byte-identical JSON (asserted by [cloudtx report JOURNAL
    --metrics SNAPSHOT] and the test suite). *)

(** [of_journal path] — [rules] (default {!Cloudtx_obs.Slo.default})
    drive the Watchtower evaluation whose alert transitions land in the
    report's per-window gauges; [width_ms] is the window width (default
    100 ms).  Returns the report and the monitor (for alert rendering
    and exit-code gates). *)
val of_journal :
  ?rules:Cloudtx_obs.Slo.rules ->
  ?width_ms:float ->
  string ->
  (Cloudtx_obs.Report.t * Cloudtx_obs.Monitor.t, string) result

(** Parse snapshot JSONL contents (header, dense window lines, totals). *)
val of_snapshot : string -> (Cloudtx_obs.Report.t, string) result

val of_snapshot_file : string -> (Cloudtx_obs.Report.t, string) result

(** Alert-timeline lines for {!Cloudtx_obs.Report.to_markdown}: one
    human-readable line per transition record of an [--alerts-out]
    JSONL file (header skipped). *)
val alert_lines_of_file : string -> (string list, string) result

(** The same rendering for a live monitor's alerts: fire line, then
    resolve line when resolved, in firing order. *)
val alert_lines_of_monitor : Cloudtx_obs.Monitor.t -> string list
