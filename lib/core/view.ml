(* Re-export: the proof view lives in the sans-IO protocol core. *)
include Cloudtx_protocol.View
