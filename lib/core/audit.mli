(** Offline replay auditor for flight-recorder journals.

    Given a journal written by {!Cloudtx_obs.Journal} (via the
    {!Manager}/{!Participant} drivers), [run] re-drives fresh
    {!Cloudtx_protocol.Tm_machine}/{!Cloudtx_protocol.Ps_machine}
    instances from the journaled inputs alone and verifies, with no
    access to the live run:

    - {b Conformance}: every action a replayed machine emits matches the
      recorded one byte-for-byte (the machines are deterministic, so any
      divergence proves the journal was mutated or the machines changed);
    - {b Integrity}: the header is valid, [seq] is gap-free (a gap proves
      a dropped record), and every input's recorded actions are present;
    - {b Atomic commitment}: AC1 (all nodes that decide a transaction
      decide the same value), AC2 (commit only when no participant voted
      NO), AC3 (no node decides twice), and every [Apply{commit}] on a
      node is preceded by that node's [Prepare] (forced vote record);
    - {b Soundness}: at every commit the TM's proof view satisfies the
      scheme's trusted-transaction definition ({!Trusted.check}), with
      master versions reconstructed from the [Master_version_reply]
      messages that TM received;
    - {b Accounting}: Table I protocol messages, proof evaluations and
      forced log writes, recomputed from the journal alone (exposed in
      the {!report} for comparison against the live registry and the
      {!Complexity} closed forms).

    Diagnostics are pointed: the first divergent [seq], expected
    vs. got.  Counts assume loss-free delivery (the master is not a
    journaled node, so its sends are only visible as deliveries). *)

type report = {
  records : int;  (** Journal records replayed (header excluded). *)
  nodes : int;  (** Distinct machines (TMs + participants). *)
  transactions : int;  (** TM [Finish] actions seen. *)
  commits : int;
  aborts : int;
  protocol_messages : int;
      (** Messages under {!Message.protocol_labels} — Table I's metric. *)
  proofs : int;  (** Proof evaluations ({!Ps_machine.input.Evaluated}). *)
  forced_logs : int;  (** TM decision forces + participant votes/decisions. *)
}

val report_to_string : report -> string

(** [run ~lines] audits one journal, header line first.  [Error] names
    the first divergent [seq] and what was expected vs. recorded. *)
val run : lines:string list -> (report, string) result

(** [of_file path] reads a journal (JSONL or binary, auto-detected) and
    audits it.  Binary journals decode to the same canonical records a
    JSONL journal holds ({!Journal_io}), so the byte-exact replay — and
    the verdict — is identical across formats. *)
val of_file : string -> (report, string) result
