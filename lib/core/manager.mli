(** Transaction manager: drives one transaction through execution, the
    scheme's per-query enforcement, and commit.

    One TM node is spawned per transaction (node name ["tm-<txn id>"]),
    mirroring the paper's model where "each transaction is handled by only
    one TM".  The TM:

    + ships queries to their servers sequentially;
    + applies the configured scheme during execution — punctual proof
      checks, Incremental Punctual's per-query version-consistency check,
      Continuous's per-query 2PV with Update rounds;
    + at commit runs 2PVC (Algorithm 2) — or plain 2PC when the scheme
      already established consistency (Section V-C);
    + force-logs its decision, distributes it and collects acks, and
      answers recovering participants' [Inquiry] messages afterwards. *)

type master_mode =
  [ `Once  (** Fetch the master version once per 2PVC run. *)
  | `Every_round  (** Re-fetch before resolving every round (the paper's
                      default accounting: r retrievals). *) ]

type config = {
  scheme : Scheme.t;
  level : Consistency.level;
  master_mode : master_mode;
  max_rounds : int;
      (** Abort with [Rounds_exhausted] when validation has not converged
          after this many voting rounds (the paper notes global
          consistency is theoretically unbounded). *)
  vote_timeout : float;
      (** Milliseconds to wait for a voting round before aborting with
          [Timed_out]; 0 disables (default — crash-free runs then carry no
          timer noise in their message counts). *)
  decision_retry : float;
      (** Retransmission period for unacknowledged decisions; 0 disables.
          A decided transaction can never abort, so the decision is
          re-sent until every participant acknowledges — this is what lets
          a recovering participant finish an in-doubt transaction. *)
  read_only_optimization : bool;
      (** Classic 2PC read-only optimization (Samaras et al.): a
          participant with no buffered writes votes READ, releases at vote
          time and skips the decision phase and all forced logging.
          Offered only on non-validating commits (a validating 2PVC may
          need to re-poll the participant in Update rounds). Default
          false, preserving Table I's accounting. *)
  snapshot_reads : bool;
      (** Serve read-only queries from an MVCC snapshot as of the
          transaction's start timestamp: no shared locks, no blocking, no
          wait-die deaths for readers. Writes are unaffected. Default
          false. *)
  timeout_policy : Cloudtx_protocol.Timeout_policy.t;
      (** How the coordinator arms its vote watchdog and decision-retry
          timers.  [Fixed] (default) uses [vote_timeout]/[decision_retry]
          verbatim — journals are byte-identical to pre-v4 captures.
          [Adaptive] estimates per-peer RTTs, backs off exponentially
          with deterministic jitter, and converts exhausted retry budgets
          into clean aborts ([Budget_exhausted]).  See
          {!Cloudtx_protocol.Timeout_policy}. *)
}

val config :
  ?master_mode:master_mode ->
  ?max_rounds:int ->
  ?vote_timeout:float ->
  ?decision_retry:float ->
  ?read_only_optimization:bool ->
  ?snapshot_reads:bool ->
  ?timeout_policy:Cloudtx_protocol.Timeout_policy.t ->
  Scheme.t ->
  Consistency.level ->
  config

(** [submit cluster config txn ~on_done] spawns the TM and starts the
    first query; [on_done] fires when the decision is acknowledged.
    The caller then runs the cluster (see {!Cluster.run}).

    [ts] overrides the transaction's start timestamp (default: now).
    A restart of a wait-die victim passes the original timestamp so the
    transaction {e ages} and eventually beats its killers — pass it
    together with a fresh transaction id (TM node names must be
    unique). *)
val submit :
  ?ts:float ->
  ?resilience:Resilience.t ->
  Cluster.t ->
  config ->
  Cloudtx_txn.Transaction.t ->
  on_done:(Outcome.t -> unit) ->
  unit

(** A submitted transaction's coordinator, for fault injection. *)
type handle

(** Like {!submit}, returning the coordinator handle.

    [dedup] (default true) drops re-delivered wire messages on their
    transport sequence number — the coordinator-side half of idempotent
    delivery under duplication.  [false] is an escape hatch for chaos
    tests demonstrating the failure mode.

    [resilience] gates the submit through shared circuit breakers and
    admission control ({!Resilience}).  A rejected transaction fails fast
    and deterministically: no machine, no protocol traffic, no journal
    create record — [on_done] fires immediately with reason
    {!Outcome.Breaker_open} or {!Outcome.Admission_rejected}.  Admitted
    transactions report their outcome back as breaker evidence. *)
val submit_handle :
  ?ts:float ->
  ?dedup:bool ->
  ?resilience:Resilience.t ->
  Cluster.t ->
  config ->
  Cloudtx_txn.Transaction.t ->
  on_done:(Outcome.t -> unit) ->
  handle

val txn_id : handle -> string

(** Fail-stop the coordinator: volatile machine state is lost and it stops
    receiving; only the force-logged decision record (if any) survives. *)
val crash : handle -> unit

(** Restart a crashed coordinator.  With a durable decision record it
    re-drives the decision phase: retransmits the decision at-least-once
    until every owed participant acks, and answers [Inquiry] pulls.
    Without one it presumes abort (Section V), answering inquiries with
    ABORT and delivering an [on_done] outcome with reason
    {!Outcome.Coordinator_crash}. *)
val restart : handle -> unit

(** [run_one cluster config txn] — submit, run to quiescence, return the
    outcome. Raises [Failure] if the simulation quiesced undecided (e.g. a
    participant is crashed). *)
val run_one : Cluster.t -> config -> Cloudtx_txn.Transaction.t -> Outcome.t
