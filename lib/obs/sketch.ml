(* Octave o covers [2^(lo_exp + o), 2^(lo_exp + o + 1)); the exponent
   range matches Histogram's log2 buckets so the two stay comparable. *)
let lo_exp = -16
let hi_exp = 47
let n_octaves = hi_exp - lo_exp + 1

type t = {
  sub_bits : int;
  sub : int;  (* 2^sub_bits sub-buckets per octave *)
  octaves : int array option array;  (* lazily allocated rows *)
  mutable zero : int;  (* non-positive / NaN observations *)
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

let create ?(sub_bits = 5) () =
  if sub_bits < 0 || sub_bits > 12 then
    invalid_arg "Sketch.create: sub_bits outside [0, 12]";
  {
    sub_bits;
    sub = 1 lsl sub_bits;
    octaves = Array.make n_octaves None;
    zero = 0;
    count = 0;
    sum = 0.;
    min = Float.infinity;
    max = Float.neg_infinity;
  }

let sub_bits t = t.sub_bits
let error_bound t = 1. /. float_of_int (2 * t.sub)
let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count
let min t = t.min
let max t = t.max

(* The octave exponent k with 2^k <= v < 2^(k+1): frexp gives
   v = m * 2^e, m in [0.5, 1), so k = e - 1 (exact powers of two have
   m = 0.5 and stay in their own octave's first sub-bucket). *)
let locate t v =
  let _, e = Float.frexp v in
  let k = e - 1 in
  if k < lo_exp then (0, 0)
  else if k > hi_exp then (n_octaves - 1, t.sub - 1)
  else begin
    let frac = Float.ldexp v (-k) -. 1. in
    (* frac in [0, 1) *)
    let s = Stdlib.min (t.sub - 1) (int_of_float (frac *. float_of_int t.sub)) in
    (k - lo_exp, s)
  end

let row t o =
  match t.octaves.(o) with
  | Some r -> r
  | None ->
    let r = Array.make t.sub 0 in
    t.octaves.(o) <- Some r;
    r

let observe t v =
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v;
  if v <= 0. || Float.is_nan v then t.zero <- t.zero + 1
  else begin
    let o, s = locate t v in
    let r = row t o in
    r.(s) <- r.(s) + 1
  end

(* Midpoint of sub-bucket (o, s): the bucket spans
   [2^(lo_exp+o) * (1 + s/sub), 2^(lo_exp+o) * (1 + (s+1)/sub)). *)
let representative t o s =
  Float.ldexp (1. +. ((float_of_int s +. 0.5) /. float_of_int t.sub)) (lo_exp + o)

let upper_bound t o s =
  Float.ldexp (1. +. (float_of_int (s + 1) /. float_of_int t.sub)) (lo_exp + o)

(* Bin midpoint holding the 0-based order statistic [i]. *)
let value_at_rank t i =
  if i < t.zero then 0.
  else begin
    let cum = ref t.zero and hit = ref Float.nan in
    (try
       for o = 0 to n_octaves - 1 do
         match t.octaves.(o) with
         | None -> ()
         | Some r ->
           for s = 0 to t.sub - 1 do
             if r.(s) > 0 then begin
               cum := !cum + r.(s);
               if !cum > i then begin
                 hit := representative t o s;
                 raise Exit
               end
             end
           done
       done
     with Exit -> ());
    if Float.is_nan !hit then t.max (* i beyond the bins: clamp *)
    else !hit
  end

let percentile t p =
  if t.count = 0 then invalid_arg "Sketch.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Sketch.percentile: p outside [0, 100]";
  let r = p /. 100. *. float_of_int (t.count - 1) in
  let lo = int_of_float (Float.floor r) in
  let hi = int_of_float (Float.ceil r) in
  let vlo = value_at_rank t lo in
  if hi = lo then vlo
  else begin
    let vhi = value_at_rank t hi in
    vlo +. ((r -. float_of_int lo) *. (vhi -. vlo))
  end

let merge_into dst src =
  if dst.sub_bits <> src.sub_bits then
    invalid_arg "Sketch.merge_into: sub_bits differ";
  dst.zero <- dst.zero + src.zero;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum +. src.sum;
  if src.min < dst.min then dst.min <- src.min;
  if src.max > dst.max then dst.max <- src.max;
  Array.iteri
    (fun o src_row ->
      match src_row with
      | None -> ()
      | Some sr ->
        let dr = row dst o in
        for s = 0 to dst.sub - 1 do
          dr.(s) <- dr.(s) + sr.(s)
        done)
    src.octaves

let bins t =
  let out = ref [] in
  for o = n_octaves - 1 downto 0 do
    match t.octaves.(o) with
    | None -> ()
    | Some r ->
      for s = t.sub - 1 downto 0 do
        if r.(s) > 0 then out := (upper_bound t o s, r.(s)) :: !out
      done
  done;
  if t.zero > 0 then (0., t.zero) :: !out else !out

let memory_words t =
  let rows =
    Array.fold_left
      (fun acc row -> match row with None -> acc | Some _ -> acc + t.sub + 2)
      0 t.octaves
  in
  n_octaves + rows + 8
