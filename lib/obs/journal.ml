let format_version = 4

type format = Jsonl | Binary

let format_name = function Jsonl -> "jsonl" | Binary -> "bin"

let format_of_string = function
  | "jsonl" | "json" -> Some Jsonl
  | "bin" | "binary" -> Some Binary
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Binary framing                                                      *)
(* ------------------------------------------------------------------ *)

let binary_magic = "CTXJ"

let binary_header ~version =
  binary_magic ^ String.make 1 (Char.chr (version land 0xff))

let is_binary s =
  String.length s >= String.length binary_magic
  && String.sub s 0 (String.length binary_magic) = binary_magic

(* Word-wise FNV-1a, 32-bit: the xor/multiply recurrence over 4-byte
   little-endian words with a byte-wise tail — must match
   [Wbuf.fnv1a_32], which documents the variant and why it still
   detects any bit flip. *)
external unsafe_get_32 : string -> int -> int32 = "%caml_string_get32u"

let fnv1a_32 s pos len =
  let h = ref 0x811c9dc5 in
  let i = ref pos in
  let last_word = pos + len - 4 in
  while !i <= last_word do
    let word = Int32.to_int (unsafe_get_32 s !i) land 0xffffffff in
    h := (!h lxor word) * 0x01000193;
    i := !i + 4
  done;
  let limit = pos + len in
  while !i < limit do
    h := (!h lxor Char.code (String.unsafe_get s !i)) * 0x01000193;
    incr i
  done;
  !h land 0xffffffff

let dir_create = 0
let dir_input = 1
let dir_action = 2
let dir_other = 255

let dir_code = function
  | "create" -> dir_create
  | "input" -> dir_input
  | "action" -> dir_action
  | _ -> dir_other

let dir_name = function
  | 0 -> Some "create"
  | 1 -> Some "input"
  | 2 -> Some "action"
  | _ -> None

(* ------------------------------------------------------------------ *)
(* JSONL envelope                                                      *)
(* ------------------------------------------------------------------ *)

let render_header ~version =
  Printf.sprintf "{\"journal\":\"cloudtx\",\"version\":%d}" version

let header = render_header ~version:format_version

let add_jsonl_prefix buf ~seq ~time_ms ~node ~dir =
  Buffer.add_string buf "{\"seq\":";
  Buffer.add_string buf (string_of_int seq);
  Buffer.add_string buf ",\"time_ms\":";
  Buffer.add_string buf (Json.number time_ms);
  Buffer.add_string buf ",\"node\":";
  Json.escape buf node;
  Buffer.add_string buf ",\"dir\":";
  Json.escape buf dir;
  Buffer.add_string buf ",\"payload\":"

let render_jsonl ~seq ~time_ms ~node ~dir ~payload =
  let buf = Buffer.create (64 + String.length payload) in
  add_jsonl_prefix buf ~seq ~time_ms ~node ~dir;
  Buffer.add_string buf payload;
  Buffer.add_char buf '}';
  Buffer.contents buf

let add_frame_body w ~seq ~time_ms ~node ~dir =
  Wbuf.varint w seq;
  Wbuf.f64_le w time_ms;
  Wbuf.varint w (String.length node);
  Wbuf.str w node;
  let code = dir_code dir in
  Wbuf.u8 w code;
  if code = dir_other then begin
    Wbuf.varint w (String.length dir);
    Wbuf.str w dir
  end

(* Whole frame — length placeholder, body, checksum — built in [w]
   starting at its current position; the placeholder is patched once the
   body length is known.  Returns the body's payload span for observers,
   packed [pos lsl 31 lor len] to keep the hot path allocation-free. *)
let frame_into w ~seq ~time_ms ~node ~dir ~emit =
  let start = Wbuf.length w in
  Wbuf.u32_le w 0;
  add_frame_body w ~seq ~time_ms ~node ~dir;
  let p0 = Wbuf.length w in
  emit w;
  let len = Wbuf.length w - start - 4 in
  Wbuf.patch_u32_le w start len;
  Wbuf.u32_le w (Wbuf.fnv1a_32 w (start + 4) len);
  ((p0 - start) lsl 31) lor (len - (p0 - start - 4))

let encode_frame_into w ~seq ~time_ms ~node ~dir ~emit =
  ignore (frame_into w ~seq ~time_ms ~node ~dir ~emit : int)

(* Shared scratch for the standalone encoder (a journal sink uses its
   own writer): encode_frame is not reentrant — [emit] must not itself
   call encode_frame. *)
let encode_scratch = Wbuf.create 512

let encode_frame buf ~seq ~time_ms ~node ~dir ~emit =
  let w = encode_scratch in
  Wbuf.clear w;
  ignore (frame_into w ~seq ~time_ms ~node ~dir ~emit : int);
  Buffer.add_subbytes buf (Wbuf.unsafe_bytes w) 0 (Wbuf.length w)

(* ------------------------------------------------------------------ *)
(* Sink                                                                *)
(* ------------------------------------------------------------------ *)

type t = {
  live : bool;
  format : format;
  clock : unit -> float;
  entries : string Queue.t;
      (** Encoded entries: JSONL lines (no newline) or binary frames. *)
  mutable buffered_bytes : int;
  max_buffer_bytes : int;
  mutable dropped : int;
  mutable seq : int;
  mutable oc : out_channel option;
  mutable observers :
    (seq:int -> time_ms:float -> node:string -> dir:string -> payload:string -> unit)
    list;
      (** Registration order; fan-out per record.  Empty = zero cost. *)
  mutable on_drop : (int -> unit) option;
  scratch : Buffer.t;  (** JSONL line under construction. *)
  wbody : Wbuf.t;  (** Binary frame body under construction. *)
}

let noop =
  {
    live = false;
    format = Jsonl;
    clock = (fun () -> 0.);
    entries = Queue.create ();
    buffered_bytes = 0;
    max_buffer_bytes = max_int;
    dropped = 0;
    seq = 0;
    oc = None;
    observers = [];
    on_drop = None;
    scratch = Buffer.create 0;
    wbody = Wbuf.create 16;
  }

let create ~clock ?(format = Jsonl) ?(max_buffer_bytes = max_int) ?path () =
  let t =
    {
      live = true;
      format;
      clock;
      entries = Queue.create ();
      buffered_bytes = 0;
      max_buffer_bytes = max 0 max_buffer_bytes;
      dropped = 0;
      seq = 0;
      oc = None;
      observers = [];
      on_drop = None;
      scratch = Buffer.create 256;
      wbody = Wbuf.create 256;
    }
  in
  (match path with
  | None -> ()
  | Some path ->
    let oc = open_out_bin path in
    (match format with
    | Jsonl ->
      output_string oc header;
      output_char oc '\n'
    | Binary -> output_string oc (binary_header ~version:format_version));
    t.oc <- Some oc);
  t

let enabled t = t.live
let format t = t.format
let add_observer t f = if t.live then t.observers <- t.observers @ [ f ]
let set_on_drop t f = if t.live then t.on_drop <- Some f

(* Bytes charged against the in-memory cap: the actual encoded size of
   the entry in its format — JSONL pays for its newline, binary frames
   are self-delimiting. *)
let entry_cost t entry =
  String.length entry + (match t.format with Jsonl -> 1 | Binary -> 0)

let evict t =
  let n = ref 0 in
  while
    t.buffered_bytes > t.max_buffer_bytes && not (Queue.is_empty t.entries)
  do
    let entry = Queue.pop t.entries in
    t.buffered_bytes <- t.buffered_bytes - entry_cost t entry;
    incr n
  done;
  if !n > 0 then begin
    t.dropped <- t.dropped + !n;
    match t.on_drop with None -> () | Some f -> f !n
  end

(* Shared tail of the record paths: buffer the encoded entry, charge the
   cap, write through, notify the observers. *)
let push_entry t ~time_ms ~node ~dir entry payload_pos payload_len =
  Queue.push entry t.entries;
  t.buffered_bytes <- t.buffered_bytes + entry_cost t entry;
  evict t;
  (match t.oc with
  | None -> ()
  | Some oc -> (
    output_string oc entry;
    match t.format with Jsonl -> output_char oc '\n' | Binary -> ()));
  match t.observers with
  | [] -> ()
  | observers ->
    let payload = String.sub entry payload_pos payload_len in
    List.iter
      (fun f -> f ~seq:t.seq ~time_ms ~node ~dir ~payload)
      observers

(* Binary record: the whole frame is built in the reused writer
   (checksum straight over its backing bytes), then extracted as the
   entry string — one allocation per record. *)
let push_binary t ~time_ms ~node ~dir ~emit =
  let w = t.wbody in
  Wbuf.clear w;
  let span = frame_into w ~seq:t.seq ~time_ms ~node ~dir ~emit in
  push_entry t ~time_ms ~node ~dir
    (Wbuf.contents w)
    (span lsr 31)
    (span land ((1 lsl 31) - 1))

(* [emit] renders the payload as JSON text.  On a binary journal the
   rendered text is stored as the frame's raw payload bytes. *)
let record_bytes t ~node ~dir ~emit =
  if t.live then begin
    t.seq <- t.seq + 1;
    let time_ms = t.clock () in
    match t.format with
    | Jsonl ->
      let buf = t.scratch in
      Buffer.clear buf;
      add_jsonl_prefix buf ~seq:t.seq ~time_ms ~node ~dir;
      let p0 = Buffer.length buf in
      emit buf;
      let p1 = Buffer.length buf in
      Buffer.add_char buf '}';
      push_entry t ~time_ms ~node ~dir (Buffer.contents buf) p0 (p1 - p0)
    | Binary ->
      Buffer.clear t.scratch;
      emit t.scratch;
      let payload = Buffer.contents t.scratch in
      push_binary t ~time_ms ~node ~dir ~emit:(fun w -> Wbuf.str w payload)
  end

(* [emit] writes raw payload bytes straight into the frame body — the
   allocation-lean path for binary sinks ([Codec_bin] emitters).  Raises
   on a JSONL journal, whose payloads must be JSON text. *)
let record_frame t ~node ~dir ~emit =
  if t.live then begin
    (match t.format with
    | Binary -> ()
    | Jsonl -> invalid_arg "Journal.record_frame: JSONL journal");
    t.seq <- t.seq + 1;
    let time_ms = t.clock () in
    push_binary t ~time_ms ~node ~dir ~emit
  end

let record t ~node ~dir ~payload =
  record_bytes t ~node ~dir ~emit:(fun buf -> Buffer.add_string buf payload)

let length t = t.seq
let dropped t = t.dropped

let to_string t =
  let hdr =
    match t.format with
    | Jsonl -> header ^ "\n"
    | Binary -> binary_header ~version:format_version
  in
  let buf = Buffer.create (t.buffered_bytes + String.length hdr) in
  Buffer.add_string buf hdr;
  Queue.iter
    (fun entry ->
      Buffer.add_string buf entry;
      match t.format with
      | Jsonl -> Buffer.add_char buf '\n'
      | Binary -> ())
    t.entries;
  Buffer.contents buf

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    t.oc <- None;
    close_out oc

(* ------------------------------------------------------------------ *)
(* Binary reader                                                       *)
(* ------------------------------------------------------------------ *)

type frame = {
  seq : int;
  time_ms : float;
  node : string;
  dir : string;
  payload : string;  (** Raw payload bytes (not JSON). *)
}

type decoded = {
  version : int;
  frames : frame list;
  torn_bytes : int;
      (** Trailing bytes of an incomplete final frame, discarded
          (longest-valid-prefix, as for a torn WAL tail). *)
}

exception Bad_frame of string

let read_varint s pos limit =
  let n = ref 0 and shift = ref 0 and p = ref pos in
  let fin = ref (-1) in
  while !fin < 0 do
    if !p >= limit then raise (Bad_frame "varint runs past frame end");
    if !shift > 56 then raise (Bad_frame "varint too wide");
    let b = Char.code (String.unsafe_get s !p) in
    incr p;
    n := !n lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then fin := !n
  done;
  (!fin, !p)

let read_u32_le s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let read_f64_le s pos limit =
  if pos + 8 > limit then raise (Bad_frame "f64 runs past frame end");
  let b = Bytes.unsafe_of_string s in
  (Int64.float_of_bits (Bytes.get_int64_le b pos), pos + 8)

let decode_frame_body s pos len =
  let limit = pos + len in
  let seq, p = read_varint s pos limit in
  let time_ms, p = read_f64_le s p limit in
  let node_len, p = read_varint s p limit in
  if p + node_len > limit then raise (Bad_frame "node runs past frame end");
  let node = String.sub s p node_len in
  let p = p + node_len in
  if p >= limit then raise (Bad_frame "missing dir byte");
  let code = Char.code s.[p] in
  let p = p + 1 in
  let dir, p =
    match dir_name code with
    | Some d -> (d, p)
    | None ->
      if code <> dir_other then
        raise (Bad_frame (Printf.sprintf "unknown dir code %d" code));
      let dlen, p = read_varint s p limit in
      if p + dlen > limit then raise (Bad_frame "dir runs past frame end");
      (String.sub s p dlen, p + dlen)
  in
  { seq; time_ms; node; dir; payload = String.sub s p (limit - p) }

let decode_binary s =
  let magic_len = String.length binary_magic in
  if not (is_binary s) then Error "not a binary journal: bad magic"
  else if String.length s < magic_len + 1 then
    Error "binary journal truncated before version byte"
  else begin
    let version = Char.code s.[magic_len] in
    let total = String.length s in
    let frames = ref [] in
    let last_seq = ref 0 in
    let pos = ref (magic_len + 1) in
    let torn = ref 0 in
    try
      while !pos < total do
        if !pos + 4 > total then begin
          torn := total - !pos;
          pos := total
        end
        else begin
          let len = read_u32_le s !pos in
          if !pos + 4 + len + 4 > total then begin
            torn := total - !pos;
            pos := total
          end
          else begin
            let body_pos = !pos + 4 in
            let want = read_u32_le s (body_pos + len) in
            let got = fnv1a_32 s body_pos len in
            if want <> got then
              raise
                (Bad_frame
                   (Printf.sprintf
                      "frame %d (expected seq %d): checksum mismatch"
                      (List.length !frames + 1)
                      (!last_seq + 1)));
            let fr =
              try decode_frame_body s body_pos len
              with Bad_frame m ->
                raise
                  (Bad_frame
                     (Printf.sprintf "frame %d (expected seq %d): %s"
                        (List.length !frames + 1)
                        (!last_seq + 1) m))
            in
            last_seq := fr.seq;
            frames := fr :: !frames;
            pos := body_pos + len + 4
          end
        end
      done;
      Ok { version; frames = List.rev !frames; torn_bytes = !torn }
    with Bad_frame m -> Error m
  end
