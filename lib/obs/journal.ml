let format_version = 3

type t = {
  live : bool;
  clock : unit -> float;
  lines : string Queue.t;
  mutable buffered_bytes : int;
  max_buffer_bytes : int;
  mutable dropped : int;
  mutable seq : int;
  mutable oc : out_channel option;
  mutable observer :
    (seq:int -> time_ms:float -> node:string -> dir:string -> payload:string -> unit)
    option;
  mutable on_drop : (int -> unit) option;
}

let noop =
  {
    live = false;
    clock = (fun () -> 0.);
    lines = Queue.create ();
    buffered_bytes = 0;
    max_buffer_bytes = max_int;
    dropped = 0;
    seq = 0;
    oc = None;
    observer = None;
    on_drop = None;
  }

let header =
  Printf.sprintf "{\"journal\":\"cloudtx\",\"version\":%d}" format_version

let create ~clock ?(max_buffer_bytes = max_int) ?path () =
  let t =
    {
      live = true;
      clock;
      lines = Queue.create ();
      buffered_bytes = 0;
      max_buffer_bytes = max 0 max_buffer_bytes;
      dropped = 0;
      seq = 0;
      oc = None;
      observer = None;
      on_drop = None;
    }
  in
  (match path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc header;
    output_char oc '\n';
    t.oc <- Some oc);
  t

let enabled t = t.live
let set_observer t f = if t.live then t.observer <- Some f
let set_on_drop t f = if t.live then t.on_drop <- Some f

let evict t =
  let n = ref 0 in
  while
    t.buffered_bytes > t.max_buffer_bytes && not (Queue.is_empty t.lines)
  do
    let line = Queue.pop t.lines in
    t.buffered_bytes <- t.buffered_bytes - (String.length line + 1);
    incr n
  done;
  if !n > 0 then begin
    t.dropped <- t.dropped + !n;
    match t.on_drop with None -> () | Some f -> f !n
  end

let record t ~node ~dir ~payload =
  if t.live then begin
    t.seq <- t.seq + 1;
    let time_ms = t.clock () in
    let line =
      Printf.sprintf "{\"seq\":%d,\"time_ms\":%s,\"node\":%s,\"dir\":%s,\"payload\":%s}"
        t.seq
        (Json.number time_ms)
        (Json.quote node) (Json.quote dir) payload
    in
    Queue.push line t.lines;
    t.buffered_bytes <- t.buffered_bytes + (String.length line + 1);
    evict t;
    (match t.oc with
    | None -> ()
    | Some oc ->
      output_string oc line;
      output_char oc '\n');
    match t.observer with
    | None -> ()
    | Some f -> f ~seq:t.seq ~time_ms ~node ~dir ~payload
  end

let length t = t.seq
let dropped t = t.dropped

let to_string t =
  let buf = Buffer.create (t.buffered_bytes + String.length header + 1) in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Queue.iter
    (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    t.lines;
  Buffer.contents buf

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    t.oc <- None;
    close_out oc
