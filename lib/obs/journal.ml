let format_version = 1

type t = {
  live : bool;
  clock : unit -> float;
  buf : Buffer.t;
  mutable seq : int;
  mutable oc : out_channel option;
}

let noop =
  { live = false; clock = (fun () -> 0.); buf = Buffer.create 0; seq = 0; oc = None }

let header =
  Printf.sprintf "{\"journal\":\"cloudtx\",\"version\":%d}" format_version

let create ~clock ?path () =
  let t =
    { live = true; clock; buf = Buffer.create 4096; seq = 0; oc = None }
  in
  Buffer.add_string t.buf header;
  Buffer.add_char t.buf '\n';
  (match path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc header;
    output_char oc '\n';
    t.oc <- Some oc);
  t

let enabled t = t.live

let record t ~node ~dir ~payload =
  if t.live then begin
    t.seq <- t.seq + 1;
    let line =
      Printf.sprintf "{\"seq\":%d,\"time_ms\":%s,\"node\":%s,\"dir\":%s,\"payload\":%s}"
        t.seq
        (Json.number (t.clock ()))
        (Json.quote node) (Json.quote dir) payload
    in
    Buffer.add_string t.buf line;
    Buffer.add_char t.buf '\n';
    match t.oc with
    | None -> ()
    | Some oc ->
      output_string oc line;
      output_char oc '\n'
  end

let length t = t.seq
let to_string t = Buffer.contents t.buf

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    t.oc <- None;
    close_out oc
