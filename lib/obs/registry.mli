(** Labeled metrics registry: counters, gauges and histograms
    ({!Histogram} — exact percentiles by default, or bounded-memory
    sketches when created with the [Sketch] backend).

    A time series is identified by a metric name plus a label set such as
    [[("scheme", "deferred"); ("level", "view")]].  Label order does not
    matter — sets are canonicalised by sorting on the key.

    Zero cost when disabled: {!noop} drops every write in a single branch.
    Instrumentation that builds label lists dynamically must guard on
    {!enabled} so the disabled path allocates nothing. *)

type t

type labels = (string * string) list

(** Shared disabled registry; every write is a no-op. *)
val noop : t

(** [create ()] — [histogram] selects the storage backend for every
    histogram this registry creates: {!Histogram.Exact} (default, exact
    percentiles, O(n) memory) or {!Histogram.Sketch} (bounded-memory
    log-linear sketch for big runs). *)
val create : ?histogram:Histogram.backend -> unit -> t

val enabled : t -> bool

(** The backend new histograms are created with. *)
val histogram_backend : t -> Histogram.backend

(** {1 Writes} *)

val incr : ?by:int -> t -> string -> labels -> unit
val set_gauge : t -> string -> labels -> float -> unit
val observe : t -> string -> labels -> float -> unit

(** {1 Reads} *)

(** Counter value for an exact label set; 0 when absent. *)
val counter : t -> string -> labels -> int

(** Sum of a counter over every label set it was written with. *)
val counter_total : t -> string -> int

val gauge : t -> string -> labels -> float option
val histogram : t -> string -> labels -> Histogram.t option

(** Every series as [(name, canonical labels, cell)], sorted by name then
    labels. *)
val series :
  t ->
  (string * labels * [ `Counter of int | `Gauge of float | `Histogram of Histogram.t ])
  list

(** {1 Snapshots} *)

(** Rows for {!Cloudtx_metrics.Table.render} with headers
    [metric | labels | count | value/mean | p50 | p95 | p99]. *)
val to_rows : t -> string list list

(** JSON snapshot: an array of series objects with [metric], [labels] and
    either [value] (counter/gauge) or [count]/[mean]/[min]/[max]/
    [p50]/[p95]/[p99]/[buckets] (histogram). *)
val to_json : t -> string

(** Prometheus text exposition format (0.0.4): [# HELP] / [# TYPE] lines
    per metric, histograms as cumulative [_bucket] series plus [_sum] and
    [_count].  Metric and label names are sanitised to the Prometheus
    charset (dots become underscores); label values are escaped. *)
val to_prometheus : t -> string
