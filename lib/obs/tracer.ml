type span = {
  id : int;
  parent : int;
  name : string;
  track : string;
  start : float;
  mutable finish : float;
  mutable attrs : (string * string) list;
  instant : bool;
}

type t = {
  enabled : bool;
  clock : unit -> float;
  by_id : (int, span) Hashtbl.t;
  mutable order : span list; (* newest first *)
  mutable next_id : int;
  mutable n : int;
}

let no_span = 0

let noop =
  {
    enabled = false;
    clock = (fun () -> 0.);
    by_id = Hashtbl.create 1;
    order = [];
    next_id = 1;
    n = 0;
  }

let create ~clock () =
  {
    enabled = true;
    clock;
    by_id = Hashtbl.create 256;
    order = [];
    next_id = 1;
    n = 0;
  }

let enabled t = t.enabled

let record t ~parent ~track ~instant ~attrs name =
  let id = t.next_id in
  t.next_id <- id + 1;
  let now = t.clock () in
  let span =
    {
      id;
      parent;
      name;
      track;
      start = now;
      finish = (if instant then now else Float.nan);
      attrs;
      instant;
    }
  in
  Hashtbl.add t.by_id id span;
  t.order <- span :: t.order;
  t.n <- t.n + 1;
  id

let start t ?(parent = no_span) ?(track = "") name =
  if not t.enabled then no_span
  else record t ~parent ~track ~instant:false ~attrs:[] name

let set_attr t id key value =
  if t.enabled then
    match Hashtbl.find_opt t.by_id id with
    | Some span -> span.attrs <- (key, value) :: span.attrs
    | None -> ()

let finish t ?(attrs = []) id =
  if t.enabled then
    match Hashtbl.find_opt t.by_id id with
    | Some span when Float.is_nan span.finish ->
      span.finish <- t.clock ();
      span.attrs <- attrs @ span.attrs
    | Some _ | None -> ()

let instant t ?(parent = no_span) ?(track = "") ?(attrs = []) name =
  if t.enabled then
    ignore (record t ~parent ~track ~instant:true ~attrs name)

let spans t =
  List.stable_sort
    (fun a b ->
      match Float.compare a.start b.start with
      | 0 -> Int.compare a.id b.id
      | c -> c)
    (List.rev t.order)

let length t = t.n

let clear t =
  Hashtbl.reset t.by_id;
  t.order <- [];
  t.n <- 0
