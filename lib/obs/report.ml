type stats = { count : int; p50 : float; p99 : float; p999 : float; max : float }

type window = {
  index : int;
  start_ms : float;
  begun : int;
  commits : int;
  aborts : int;
  killed : int;
  staleness : int;
  alerts_fired : int;
  alerts_resolved : int;
  alerts_open : int;
  phases : (string * stats) list;
}

type totals = {
  begun : int;
  commits : int;
  aborts : int;
  killed : int;
  staleness : int;
  alerts_fired : int;
  alerts_resolved : int;
  alerts_open : int;
  phases : (string * stats) list;
}

type t = {
  width_ms : float;
  windows : window list;
  totals : totals;
  knee : int option;
}

let finished (w : window) = w.commits + w.aborts

let total_p99 (w : window) =
  Option.map (fun s -> s.p99) (List.assoc_opt "total" w.phases)

(* First window whose total-phase p99 inflected (>= 1.5x the best earlier
   p99) while throughput flattened (finished count <= 1.1x the best
   earlier window).  Documented in DESIGN §8. *)
let detect_knee windows =
  let rec go best_p99 best_tp = function
    | [] -> None
    | (w : window) :: rest -> (
      match total_p99 w with
      | None -> go best_p99 best_tp rest
      | Some p99 ->
        let tp = float_of_int (finished w) in
        let hit =
          match best_p99 with
          | Some base when p99 >= 1.5 *. base && tp <= 1.1 *. best_tp ->
            Some w.index
          | _ -> None
        in
        (match hit with
        | Some _ -> hit
        | None ->
          let best_p99 =
            match best_p99 with
            | None -> Some p99
            | Some b -> Some (Float.min b p99)
          in
          go best_p99 (Float.max best_tp tp) rest))
  in
  go None 0. windows

let make ~width_ms ~windows ~totals =
  { width_ms; windows; totals; knee = detect_knee windows }

let of_timeseries ts =
  let window_of (c : Timeseries.cell) =
    {
      index = c.Timeseries.index;
      start_ms = c.Timeseries.start_ms;
      begun = c.Timeseries.begun;
      commits = c.Timeseries.commits;
      aborts = c.Timeseries.aborts;
      killed = c.Timeseries.killed;
      staleness = c.Timeseries.staleness;
      alerts_fired = c.Timeseries.alerts_fired;
      alerts_resolved = c.Timeseries.alerts_resolved;
      alerts_open = c.Timeseries.alerts_open;
      phases =
        List.map
          (fun (name, (s : Timeseries.stats)) ->
            ( name,
              {
                count = s.Timeseries.count;
                p50 = s.Timeseries.p50;
                p99 = s.Timeseries.p99;
                p999 = s.Timeseries.p999;
                max = s.Timeseries.max;
              } ))
          c.Timeseries.phases;
    }
  in
  let tot = Timeseries.totals ts in
  let totals =
    {
      begun = tot.Timeseries.begun;
      commits = tot.Timeseries.commits;
      aborts = tot.Timeseries.aborts;
      killed = tot.Timeseries.killed;
      staleness = tot.Timeseries.staleness;
      alerts_fired = tot.Timeseries.alerts_fired;
      alerts_resolved = tot.Timeseries.alerts_resolved;
      alerts_open = tot.Timeseries.alerts_open;
      phases =
        List.map
          (fun (name, (s : Timeseries.stats)) ->
            ( name,
              {
                count = s.Timeseries.count;
                p50 = s.Timeseries.p50;
                p99 = s.Timeseries.p99;
                p999 = s.Timeseries.p999;
                max = s.Timeseries.max;
              } ))
          tot.Timeseries.phases;
    }
  in
  make ~width_ms:(Timeseries.width_ms ts)
    ~windows:(List.map window_of (Timeseries.cells ts))
    ~totals

let throughput t w = float_of_int (finished w) *. 1000. /. t.width_ms

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let format_version = 1

let stats_json (s : stats) =
  Json.obj
    [
      ("count", string_of_int s.count);
      ("p50", Json.number s.p50);
      ("p99", Json.number s.p99);
      ("p999", Json.number s.p999);
      ("max", Json.number s.max);
    ]

let phases_json phases =
  Json.obj (List.map (fun (name, s) -> (name, stats_json s)) phases)

let window_json t (w : window) =
  Json.obj
    [
      ("window", string_of_int w.index);
      ("start_ms", Json.number w.start_ms);
      ("throughput_tps", Json.number (throughput t w));
      ("begun", string_of_int w.begun);
      ("commits", string_of_int w.commits);
      ("aborts", string_of_int w.aborts);
      ("killed", string_of_int w.killed);
      ("staleness", string_of_int w.staleness);
      ("alerts_fired", string_of_int w.alerts_fired);
      ("alerts_resolved", string_of_int w.alerts_resolved);
      ("alerts_open", string_of_int w.alerts_open);
      ("phases", phases_json w.phases);
    ]

let totals_json (tot : totals) =
  Json.obj
    [
      ("begun", string_of_int tot.begun);
      ("commits", string_of_int tot.commits);
      ("aborts", string_of_int tot.aborts);
      ("killed", string_of_int tot.killed);
      ("staleness", string_of_int tot.staleness);
      ("alerts_fired", string_of_int tot.alerts_fired);
      ("alerts_resolved", string_of_int tot.alerts_resolved);
      ("alerts_open", string_of_int tot.alerts_open);
      ("phases", phases_json tot.phases);
    ]

let to_json t =
  Json.obj
    [
      ("report", {|"cloudtx"|});
      ("version", string_of_int format_version);
      ("width_ms", Json.number t.width_ms);
      ( "knee",
        match t.knee with None -> "null" | Some i -> string_of_int i );
      ("totals", totals_json t.totals);
      ( "windows",
        "[" ^ String.concat "," (List.map (window_json t) t.windows) ^ "]" );
    ]

(* ------------------------------------------------------------------ *)
(* Markdown rendering                                                  *)
(* ------------------------------------------------------------------ *)

let ms v = Printf.sprintf "%.2f" v

let phase_cell (w : window) name pick =
  match List.assoc_opt name w.phases with
  | None -> "-"
  | Some s -> ms (pick s)

let bar scale v =
  let n =
    if scale <= 0. then 0
    else int_of_float (Float.round (v /. scale *. 20.))
  in
  String.concat "" (List.init (Stdlib.max 0 (Stdlib.min 20 n)) (fun _ -> "█"))

let add_line buf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt

let to_markdown ?(alert_lines = []) ?(blame_lines = []) t =
  let buf = Buffer.create 4096 in
  let tot = t.totals in
  add_line buf "# cloudtx run report";
  add_line buf "";
  let span_ms = float_of_int (List.length t.windows) *. t.width_ms in
  add_line buf "- windows: %d × %g ms (sim-time 0 – %g ms)"
    (List.length t.windows) t.width_ms span_ms;
  let fin = tot.commits + tot.aborts in
  add_line buf
    "- transactions: %d begun, %d finished — %d committed, %d aborted (%d \
     wait-die)%s"
    tot.begun fin tot.commits tot.aborts tot.killed
    (if fin = 0 then ""
     else
       Printf.sprintf ", %.1f%% commit"
         (100. *. float_of_int tot.commits /. float_of_int fin));
  add_line buf "- policy staleness peak: %d version(s)" tot.staleness;
  add_line buf "- alerts: %d fired, %d resolved, %d open" tot.alerts_fired
    tot.alerts_resolved tot.alerts_open;
  (match t.knee with
  | Some i ->
    add_line buf
      "- **saturation knee: window %d (t = %g ms)** — p99 inflected while \
       throughput flattened"
      i
      (float_of_int i *. t.width_ms)
  | None -> add_line buf "- saturation knee: none detected");
  add_line buf "";
  add_line buf "## Throughput per window";
  add_line buf "";
  add_line buf
    "| window | t (ms) | txn/s | commits | aborts | stale | alerts open | |";
  add_line buf "|---:|---:|---:|---:|---:|---:|---:|:---|";
  let peak_tps =
    List.fold_left (fun acc w -> Float.max acc (throughput t w)) 0. t.windows
  in
  List.iter
    (fun w ->
      let tps = throughput t w in
      add_line buf "| %d | %g | %.1f | %d | %d | %d | %d | %s |" w.index
        w.start_ms tps w.commits w.aborts w.staleness w.alerts_open
        (bar peak_tps tps))
    t.windows;
  add_line buf "";
  add_line buf "## Phase latency per window (ms)";
  add_line buf "";
  add_line buf
    "| window | exec p50 | exec p99 | commit p50 | commit p99 | decide p50 | \
     decide p99 | total p50 | total p99 | total p999 |";
  add_line buf "|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|";
  List.iter
    (fun w ->
      add_line buf "| %d | %s | %s | %s | %s | %s | %s | %s | %s | %s |"
        w.index
        (phase_cell w "execute" (fun s -> s.p50))
        (phase_cell w "execute" (fun s -> s.p99))
        (phase_cell w "commit" (fun s -> s.p50))
        (phase_cell w "commit" (fun s -> s.p99))
        (phase_cell w "decide" (fun s -> s.p50))
        (phase_cell w "decide" (fun s -> s.p99))
        (phase_cell w "total" (fun s -> s.p50))
        (phase_cell w "total" (fun s -> s.p99))
        (phase_cell w "total" (fun s -> s.p999)))
    t.windows;
  add_line buf "";
  add_line buf "## Whole-run phase quantiles (ms)";
  add_line buf "";
  add_line buf "| phase | count | p50 | p99 | p999 | max |";
  add_line buf "|:---|---:|---:|---:|---:|---:|";
  List.iter
    (fun (name, s) ->
      add_line buf "| %s | %d | %s | %s | %s | %s |" name s.count (ms s.p50)
        (ms s.p99) (ms s.p999) (ms s.max))
    tot.phases;
  if alert_lines <> [] then begin
    add_line buf "";
    add_line buf "## Alert timeline";
    add_line buf "";
    add_line buf "```";
    List.iter (fun l -> add_line buf "%s" l) alert_lines;
    add_line buf "```"
  end;
  if blame_lines <> [] then begin
    add_line buf "";
    List.iter (fun l -> add_line buf "%s" l) blame_lines
  end;
  Buffer.contents buf
