(** Mergeable bounded-memory quantile sketch (HDR-style log-linear).

    Positive values are binned by octave (the power-of-two range
    [[2^k, 2^(k+1))] that contains them) and then linearly into
    [2^sub_bits] equal-width sub-buckets per octave, so the sub-bucket
    holding a value [v] has width [2^k / 2^sub_bits <= v / 2^sub_bits].
    Reporting the sub-bucket midpoint therefore carries a {b relative
    error of at most [1 / 2^(sub_bits + 1)]} ({!error_bound}) for any
    value inside the sketch's dynamic range
    [[2^lo_exp, 2^(hi_exp + 1))] — with the defaults, sub-microsecond
    through multi-hour latencies in milliseconds at <= 1.6% error.
    Values outside the range clamp to the extreme bins (the bound does
    not hold for them); non-positive or NaN values land in a dedicated
    zero bin reported as [0].

    Memory is O(bins): octave rows are allocated lazily on first touch,
    so a sketch holds at most [n_octaves * 2^sub_bits] counters no
    matter how many values it absorbs ({!memory_words}), unlike
    {!Cloudtx_metrics.Sample_set} which retains every observation.

    Sketches with equal [sub_bits] merge by adding bin counts
    ({!merge_into}), which is exact: a merged sketch equals the sketch
    of the concatenated streams. *)

type t

(** [create ()] — [sub_bits] (default 5, i.e. 32 sub-buckets per octave)
    trades memory for accuracy; must be in [0, 12]. *)
val create : ?sub_bits:int -> unit -> t

val sub_bits : t -> int

(** Worst-case relative error of a reported quantile for in-range
    values: [1 / 2^(sub_bits + 1)]. *)
val error_bound : t -> float

val observe : t -> float -> unit
val count : t -> int

(** Exact running sum/min/max/mean of every observation (tracked beside
    the bins, not reconstructed from them). *)
val sum : t -> float

val mean : t -> float
val min : t -> float
val max : t -> float

(** [percentile t p] interpolates between the bin midpoints holding the
    order statistics of ranks [floor r] and [ceil r], [r = p/100*(n-1)]
    — the same rank convention as {!Cloudtx_metrics.Sample_set}, so the
    result is within {!error_bound} (relative) of the exact
    interpolation's bracketing order statistics.  Raises
    [Invalid_argument] when empty or [p] outside [0, 100]. *)
val percentile : t -> float -> float

(** [merge_into dst src] adds [src]'s bins and running aggregates into
    [dst].  Raises [Invalid_argument] when [sub_bits] differ. *)
val merge_into : t -> t -> unit

(** Non-empty bins as [(upper_bound, count)], ascending; the zero bin
    (non-positive values) reports upper bound [0.].  Suitable as
    cumulative Prometheus [_bucket] boundaries. *)
val bins : t -> (float * int) list

(** Words currently retained (bins plus bookkeeping) — the bounded-memory
    assertion hook for the bench. *)
val memory_words : t -> int
