type kind =
  | Queueing
  | Policy_fetch
  | Exec
  | Lock_wait
  | Proof_eval
  | Validate_round
  | Vote_round
  | Decide
  | Retry_stall
  | Timeout_stall
  | Inquiry_stall
  | Recovery
  | Other

let kind_name = function
  | Queueing -> "queueing"
  | Policy_fetch -> "policy.fetch"
  | Exec -> "query.exec"
  | Lock_wait -> "lock.wait"
  | Proof_eval -> "proof.eval"
  | Validate_round -> "2pv.round"
  | Vote_round -> "2pvc.vote"
  | Decide -> "decide"
  | Retry_stall -> "retry.stall"
  | Timeout_stall -> "timeout.stall"
  | Inquiry_stall -> "inquiry.stall"
  | Recovery -> "recovery"
  | Other -> "other"

let all_kinds =
  [
    Queueing; Policy_fetch; Exec; Lock_wait; Proof_eval; Validate_round;
    Vote_round; Decide; Retry_stall; Timeout_stall; Inquiry_stall; Recovery;
    Other;
  ]

let kind_index k =
  let rec go i = function
    | [] -> i
    | k' :: rest -> if k' = k then i else go (i + 1) rest
  in
  go 0 all_kinds

type segment = {
  kind : kind;
  peer : string;
  detail : string;
  phase : string;
  start_ms : float;
  end_ms : float;
  seq : int;
}

let segment_ms s = s.end_ms -. s.start_ms

type timeline = {
  txn : string;
  node : string;
  scheme : string;
  level : string;
  committed : bool;
  reason : string;
  begun_ms : float;
  finished_ms : float;
  segments : segment list;
}

let total_ms tl = tl.finished_ms -. tl.begun_ms

let segments_sum tl =
  List.fold_left (fun acc s -> acc +. segment_ms s) 0. tl.segments

let coverage_slack_ms tl = Float.abs (segments_sum tl -. total_ms tl)

let slack_bound_ms tl =
  1e-6
  +. (1e-12 *. Float.abs (total_ms tl) *. float_of_int (List.length tl.segments))

let covered tl = coverage_slack_ms tl <= slack_bound_ms tl

let by_kind tl =
  let totals = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let cur = try Hashtbl.find totals s.kind with Not_found -> 0. in
      Hashtbl.replace totals s.kind (cur +. segment_ms s))
    tl.segments;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []
  |> List.sort (fun (k1, v1) (k2, v2) ->
         match compare v2 v1 with
         | 0 -> compare (kind_index k1) (kind_index k2)
         | c -> c)

let dominant tl = match by_kind tl with [] -> None | hd :: _ -> Some hd

let phases = [ "execute"; "commit"; "decide" ]

let by_phase tl =
  List.map
    (fun p ->
      ( p,
        List.fold_left
          (fun acc s -> if s.phase = p then acc +. segment_ms s else acc)
          0. tl.segments ))
    phases

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let segment_to_json s =
  Json.obj
    [
      ("segment", Json.quote (kind_name s.kind));
      ("peer", Json.quote s.peer);
      ("detail", Json.quote s.detail);
      ("phase", Json.quote s.phase);
      ("start_ms", Json.number s.start_ms);
      ("end_ms", Json.number s.end_ms);
      ("ms", Json.number (segment_ms s));
      ("seq", string_of_int s.seq);
    ]

let timeline_to_json tl =
  let dom =
    match dominant tl with
    | None -> "null"
    | Some (k, ms) ->
      Json.obj
        [ ("segment", Json.quote (kind_name k)); ("ms", Json.number ms) ]
  in
  Json.obj
    [
      ("txn", Json.quote tl.txn);
      ("node", Json.quote tl.node);
      ("scheme", Json.quote tl.scheme);
      ("level", Json.quote tl.level);
      ("committed", if tl.committed then "true" else "false");
      ("reason", Json.quote tl.reason);
      ("begun_ms", Json.number tl.begun_ms);
      ("finished_ms", Json.number tl.finished_ms);
      ("total_ms", Json.number (total_ms tl));
      ("slack_ms", Json.number (coverage_slack_ms tl));
      ("covered", if covered tl then "true" else "false");
      ("dominant", dom);
      ( "segments",
        "[" ^ String.concat "," (List.map segment_to_json tl.segments) ^ "]" );
    ]

let timeline_to_text tl =
  let total = total_ms tl in
  let header =
    Printf.sprintf "txn %s [%s/%s] %s in %.3f ms (%s)" tl.txn tl.scheme
      tl.level
      (if tl.committed then "COMMIT" else "ABORT")
      total tl.reason
  in
  let path_line =
    Printf.sprintf "  critical path: %d segments, coverage slack %.9f ms%s"
      (List.length tl.segments) (coverage_slack_ms tl)
      (if covered tl then "" else "  ** NOT COVERED **")
  in
  let seg_lines =
    List.map
      (fun s ->
        let label =
          kind_name s.kind
          ^ (if s.peer = "" then "" else " " ^ s.peer)
          ^ if s.detail = "" then "" else " (" ^ s.detail ^ ")"
        in
        Printf.sprintf "    %10.3f -> %10.3f  %9.3f ms  %-7s  %s" s.start_ms
          s.end_ms (segment_ms s) s.phase label)
      tl.segments
  in
  let blame_lines =
    List.map
      (fun (k, ms) ->
        let pct = if total > 0. then 100. *. ms /. total else 0. in
        Printf.sprintf "    %-13s %9.3f ms  %5.1f%%" (kind_name k) ms pct)
      (by_kind tl)
  in
  (header :: path_line :: seg_lines) @ ("  blame:" :: blame_lines)

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

type kind_stats = {
  mutable ks_txns : int;
  mutable ks_spans : int;
  mutable ks_total : float;
  mutable ks_max : float;
  ks_sketch : Sketch.t;  (** Per-transaction time-in-segment. *)
}

type cell_stats = {
  mutable cs_txns : int;
  mutable cs_committed : int;
  mutable cs_total : float;
  cs_kinds : (kind, kind_stats) Hashtbl.t;
}

type agg = {
  top_k : int;
  cells : (string * string, cell_stats) Hashtbl.t;
  mutable slowest : timeline list;  (** Slowest first, at most [top_k]. *)
  mutable txns : int;
}

let agg_create ?(top_k = 5) () =
  { top_k = max 0 top_k; cells = Hashtbl.create 8; slowest = []; txns = 0 }

let cell_stats agg key =
  match Hashtbl.find_opt agg.cells key with
  | Some cs -> cs
  | None ->
    let cs =
      { cs_txns = 0; cs_committed = 0; cs_total = 0.; cs_kinds = Hashtbl.create 8 }
    in
    Hashtbl.add agg.cells key cs;
    cs

let kind_stats cs kind =
  match Hashtbl.find_opt cs.cs_kinds kind with
  | Some ks -> ks
  | None ->
    let ks =
      {
        ks_txns = 0;
        ks_spans = 0;
        ks_total = 0.;
        ks_max = 0.;
        ks_sketch = Sketch.create ();
      }
    in
    Hashtbl.add cs.cs_kinds kind ks;
    ks

(* Slowest-first insertion sort capped at [top_k]; ties break on txn id
   so the ranking is a pure function of the observed set. *)
let slower a b =
  match compare (total_ms b) (total_ms a) with
  | 0 -> compare a.txn b.txn
  | c -> c

let note_slowest agg tl =
  if agg.top_k > 0 then begin
    let rec insert = function
      | [] -> [ tl ]
      | hd :: rest -> if slower tl hd < 0 then tl :: hd :: rest else hd :: insert rest
    in
    let merged = insert agg.slowest in
    agg.slowest <-
      (if List.length merged > agg.top_k then
         List.filteri (fun i _ -> i < agg.top_k) merged
       else merged)
  end

let agg_observe agg tl =
  agg.txns <- agg.txns + 1;
  let cs = cell_stats agg (tl.scheme, tl.level) in
  cs.cs_txns <- cs.cs_txns + 1;
  if tl.committed then cs.cs_committed <- cs.cs_committed + 1;
  cs.cs_total <- cs.cs_total +. total_ms tl;
  (* Span counts per segment, per-txn totals into the sketches. *)
  List.iter
    (fun s ->
      let ks = kind_stats cs s.kind in
      ks.ks_spans <- ks.ks_spans + 1)
    tl.segments;
  List.iter
    (fun (k, ms) ->
      let ks = kind_stats cs k in
      ks.ks_txns <- ks.ks_txns + 1;
      ks.ks_total <- ks.ks_total +. ms;
      if ms > ks.ks_max then ks.ks_max <- ms;
      Sketch.observe ks.ks_sketch ms)
    (by_kind tl);
  note_slowest agg tl

type row = {
  row_kind : kind;
  row_txns : int;
  row_spans : int;
  row_total_ms : float;
  row_mean_ms : float;
  row_p50_ms : float;
  row_p99_ms : float;
  row_max_ms : float;
}

type cell = {
  cell_scheme : string;
  cell_level : string;
  cell_txns : int;
  cell_committed : int;
  cell_aborted : int;
  cell_total_ms : float;
  cell_rows : row list;
}

type slow = {
  slow_timeline : timeline;
  slow_dominant : kind;
  slow_dominant_ms : float;
}

let cell_of_stats (scheme, level) cs =
  let rows =
    Hashtbl.fold
      (fun kind ks acc ->
        {
          row_kind = kind;
          row_txns = ks.ks_txns;
          row_spans = ks.ks_spans;
          row_total_ms = ks.ks_total;
          row_mean_ms =
            (if ks.ks_txns = 0 then 0.
             else ks.ks_total /. float_of_int ks.ks_txns);
          row_p50_ms =
            (if Sketch.count ks.ks_sketch = 0 then 0.
             else Sketch.percentile ks.ks_sketch 50.);
          row_p99_ms =
            (if Sketch.count ks.ks_sketch = 0 then 0.
             else Sketch.percentile ks.ks_sketch 99.);
          row_max_ms = ks.ks_max;
        }
        :: acc)
      cs.cs_kinds []
    |> List.sort (fun a b ->
           match compare b.row_total_ms a.row_total_ms with
           | 0 -> compare (kind_index a.row_kind) (kind_index b.row_kind)
           | c -> c)
  in
  {
    cell_scheme = scheme;
    cell_level = level;
    cell_txns = cs.cs_txns;
    cell_committed = cs.cs_committed;
    cell_aborted = cs.cs_txns - cs.cs_committed;
    cell_total_ms = cs.cs_total;
    cell_rows = rows;
  }

let agg_cells agg =
  Hashtbl.fold (fun key cs acc -> cell_of_stats key cs :: acc) agg.cells []
  |> List.sort (fun a b ->
         match compare a.cell_scheme b.cell_scheme with
         | 0 -> compare a.cell_level b.cell_level
         | c -> c)

let agg_slowest agg =
  List.map
    (fun tl ->
      let k, ms = match dominant tl with Some d -> d | None -> (Other, 0.) in
      { slow_timeline = tl; slow_dominant = k; slow_dominant_ms = ms })
    agg.slowest

let agg_txns agg = agg.txns

let row_to_json r =
  Json.obj
    [
      ("segment", Json.quote (kind_name r.row_kind));
      ("txns", string_of_int r.row_txns);
      ("spans", string_of_int r.row_spans);
      ("total_ms", Json.number r.row_total_ms);
      ("mean_ms", Json.number r.row_mean_ms);
      ("p50_ms", Json.number r.row_p50_ms);
      ("p99_ms", Json.number r.row_p99_ms);
      ("max_ms", Json.number r.row_max_ms);
    ]

let cell_to_json c =
  Json.obj
    [
      ("scheme", Json.quote c.cell_scheme);
      ("level", Json.quote c.cell_level);
      ("txns", string_of_int c.cell_txns);
      ("committed", string_of_int c.cell_committed);
      ("aborted", string_of_int c.cell_aborted);
      ("total_ms", Json.number c.cell_total_ms);
      ( "segments",
        "[" ^ String.concat "," (List.map row_to_json c.cell_rows) ^ "]" );
    ]

let slow_to_json s =
  Json.obj
    [
      ("dominant", Json.quote (kind_name s.slow_dominant));
      ("dominant_ms", Json.number s.slow_dominant_ms);
      ("timeline", timeline_to_json s.slow_timeline);
    ]

let agg_to_json ?(extra = []) agg =
  Json.obj
    ([
       ("blame", Json.quote "cloudtx");
       ("version", "1");
       ("txns", string_of_int agg.txns);
     ]
    @ extra
    @ [
        ( "cells",
          "[" ^ String.concat "," (List.map cell_to_json (agg_cells agg)) ^ "]"
        );
        ( "slowest",
          "["
          ^ String.concat "," (List.map slow_to_json (agg_slowest agg))
          ^ "]" );
      ])

let agg_to_markdown agg =
  let buf = ref [] in
  let line s = buf := s :: !buf in
  line "## Blame";
  line "";
  line
    (Printf.sprintf "%d transactions; time-in-segment per scheme×level cell."
       agg.txns);
  List.iter
    (fun c ->
      line "";
      line
        (Printf.sprintf "### %s / %s — %d txns (%d commit, %d abort), %.3f ms total"
           c.cell_scheme c.cell_level c.cell_txns c.cell_committed
           c.cell_aborted c.cell_total_ms);
      line "";
      line "| segment | txns | spans | total ms | mean ms | p50 ms | p99 ms | max ms |";
      line "|---|---:|---:|---:|---:|---:|---:|---:|";
      List.iter
        (fun r ->
          line
            (Printf.sprintf "| %s | %d | %d | %.3f | %.3f | %.3f | %.3f | %.3f |"
               (kind_name r.row_kind) r.row_txns r.row_spans r.row_total_ms
               r.row_mean_ms r.row_p50_ms r.row_p99_ms r.row_max_ms))
        c.cell_rows)
    (agg_cells agg);
  (match agg_slowest agg with
  | [] -> ()
  | slowest ->
    line "";
    line "### Slowest transactions";
    line "";
    line "| txn | scheme | level | outcome | total ms | dominant | dominant ms |";
    line "|---|---|---|---|---:|---|---:|";
    List.iter
      (fun s ->
        let tl = s.slow_timeline in
        line
          (Printf.sprintf "| %s | %s | %s | %s | %.3f | %s | %.3f |" tl.txn
             tl.scheme tl.level
             (if tl.committed then "commit" else "abort")
             (total_ms tl)
             (kind_name s.slow_dominant)
             s.slow_dominant_ms))
      slowest);
  List.rev !buf
