type labels = (string * string) list

type cell =
  | Counter of int ref
  | Gauge of float ref
  | Hist of Histogram.t

type t = {
  enabled : bool;
  cells : (string * labels, cell) Hashtbl.t;
}

let noop = { enabled = false; cells = Hashtbl.create 1 }
let create () = { enabled = true; cells = Hashtbl.create 64 }
let enabled t = t.enabled

let canonical labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let cell t name labels make =
  let key = (name, canonical labels) in
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
    let c = make () in
    Hashtbl.add t.cells key c;
    c

let type_error name cell want =
  invalid_arg
    (Printf.sprintf "Registry: %s is a %s, not a %s" name (kind_name cell) want)

let incr ?(by = 1) t name labels =
  if t.enabled then
    match cell t name labels (fun () -> Counter (ref 0)) with
    | Counter r -> r := !r + by
    | c -> type_error name c "counter"

let set_gauge t name labels v =
  if t.enabled then
    match cell t name labels (fun () -> Gauge (ref 0.)) with
    | Gauge r -> r := v
    | c -> type_error name c "gauge"

let observe t name labels v =
  if t.enabled then
    match cell t name labels (fun () -> Hist (Histogram.create ())) with
    | Hist h -> Histogram.observe h v
    | c -> type_error name c "histogram"

let find t name labels = Hashtbl.find_opt t.cells (name, canonical labels)

let counter t name labels =
  match find t name labels with Some (Counter r) -> !r | Some _ | None -> 0

let counter_total t name =
  Hashtbl.fold
    (fun (n, _) c acc ->
      match c with
      | Counter r when String.equal n name -> acc + !r
      | Counter _ | Gauge _ | Hist _ -> acc)
    t.cells 0

let gauge t name labels =
  match find t name labels with Some (Gauge r) -> Some !r | Some _ | None -> None

let histogram t name labels =
  match find t name labels with Some (Hist h) -> Some h | Some _ | None -> None

let series t =
  let value = function
    | Counter r -> `Counter !r
    | Gauge r -> `Gauge !r
    | Hist h -> `Histogram h
  in
  Hashtbl.fold
    (fun (name, labels) c acc -> (name, labels, value c) :: acc)
    t.cells []
  |> List.sort (fun (a, la, _) (b, lb, _) ->
         match String.compare a b with
         | 0 -> Stdlib.compare (la : labels) lb
         | c -> c)

let labels_string labels =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let to_rows t =
  List.map
    (fun (name, labels, v) ->
      let ls = labels_string labels in
      match v with
      | `Counter n -> [ name; ls; string_of_int n; ""; ""; ""; "" ]
      | `Gauge g -> [ name; ls; ""; Printf.sprintf "%g" g; ""; ""; "" ]
      | `Histogram h ->
        let p q =
          if Histogram.count h = 0 then "-"
          else Printf.sprintf "%.2f" (Histogram.percentile h q)
        in
        [
          name;
          ls;
          string_of_int (Histogram.count h);
          Printf.sprintf "%.2f" (Histogram.mean h);
          p 50.;
          p 95.;
          p 99.;
        ])
    (series t)

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i (name, labels, v) ->
      if i > 0 then Buffer.add_char buf ',';
      let labels_json =
        Json.obj (List.map (fun (k, lv) -> (k, Json.quote lv)) labels)
      in
      let fields =
        [ ("metric", Json.quote name); ("labels", labels_json) ]
        @
        match v with
        | `Counter n -> [ ("type", {|"counter"|}); ("value", string_of_int n) ]
        | `Gauge g -> [ ("type", {|"gauge"|}); ("value", Json.number g) ]
        | `Histogram h ->
          let p q =
            if Histogram.count h = 0 then "null"
            else Json.number (Histogram.percentile h q)
          in
          [
            ("type", {|"histogram"|});
            ("count", string_of_int (Histogram.count h));
            ("mean", Json.number (Histogram.mean h));
            ("min", if Histogram.count h = 0 then "null" else Json.number (Histogram.min h));
            ("max", if Histogram.count h = 0 then "null" else Json.number (Histogram.max h));
            ("p50", p 50.);
            ("p95", p 95.);
            ("p99", p 99.);
            ( "buckets",
              "["
              ^ String.concat ","
                  (List.map
                     (fun (le, n) ->
                       Json.obj
                         [ ("le", Json.number le); ("count", string_of_int n) ])
                     (Histogram.buckets h))
              ^ "]" );
          ]
      in
      Buffer.add_string buf (Json.obj fields))
    (series t);
  Buffer.add_char buf ']';
  Buffer.contents buf
