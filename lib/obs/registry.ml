type labels = (string * string) list

type cell =
  | Counter of int ref
  | Gauge of float ref
  | Hist of Histogram.t

type t = {
  enabled : bool;
  histogram : Histogram.backend;
  cells : (string * labels, cell) Hashtbl.t;
}

let noop =
  { enabled = false; histogram = Histogram.Exact; cells = Hashtbl.create 1 }

let create ?(histogram = Histogram.Exact) () =
  { enabled = true; histogram; cells = Hashtbl.create 64 }

let enabled t = t.enabled
let histogram_backend t = t.histogram

let canonical labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let cell t name labels make =
  let key = (name, canonical labels) in
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
    let c = make () in
    Hashtbl.add t.cells key c;
    c

let type_error name cell want =
  invalid_arg
    (Printf.sprintf "Registry: %s is a %s, not a %s" name (kind_name cell) want)

let incr ?(by = 1) t name labels =
  if t.enabled then
    match cell t name labels (fun () -> Counter (ref 0)) with
    | Counter r -> r := !r + by
    | c -> type_error name c "counter"

let set_gauge t name labels v =
  if t.enabled then
    match cell t name labels (fun () -> Gauge (ref 0.)) with
    | Gauge r -> r := v
    | c -> type_error name c "gauge"

let observe t name labels v =
  if t.enabled then
    match
      cell t name labels (fun () ->
          Hist (Histogram.create ~backend:t.histogram ()))
    with
    | Hist h -> Histogram.observe h v
    | c -> type_error name c "histogram"

let find t name labels = Hashtbl.find_opt t.cells (name, canonical labels)

let counter t name labels =
  match find t name labels with Some (Counter r) -> !r | Some _ | None -> 0

let counter_total t name =
  Hashtbl.fold
    (fun (n, _) c acc ->
      match c with
      | Counter r when String.equal n name -> acc + !r
      | Counter _ | Gauge _ | Hist _ -> acc)
    t.cells 0

let gauge t name labels =
  match find t name labels with Some (Gauge r) -> Some !r | Some _ | None -> None

let histogram t name labels =
  match find t name labels with Some (Hist h) -> Some h | Some _ | None -> None

let series t =
  let value = function
    | Counter r -> `Counter !r
    | Gauge r -> `Gauge !r
    | Hist h -> `Histogram h
  in
  Hashtbl.fold
    (fun (name, labels) c acc -> (name, labels, value c) :: acc)
    t.cells []
  |> List.sort (fun (a, la, _) (b, lb, _) ->
         match String.compare a b with
         | 0 -> Stdlib.compare (la : labels) lb
         | c -> c)

let labels_string labels =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let to_rows t =
  List.map
    (fun (name, labels, v) ->
      let ls = labels_string labels in
      match v with
      | `Counter n -> [ name; ls; string_of_int n; ""; ""; ""; "" ]
      | `Gauge g -> [ name; ls; ""; Printf.sprintf "%g" g; ""; ""; "" ]
      | `Histogram h ->
        let p q =
          if Histogram.count h = 0 then "-"
          else Printf.sprintf "%.2f" (Histogram.percentile h q)
        in
        [
          name;
          ls;
          string_of_int (Histogram.count h);
          Printf.sprintf "%.2f" (Histogram.mean h);
          p 50.;
          p 95.;
          p 99.;
        ])
    (series t)

(* Prometheus text exposition format (version 0.0.4). *)

let prom_name name =
  let sanitized =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name
  in
  if sanitized = "" then "_"
  else
    match sanitized.[0] with
    | '0' .. '9' -> "_" ^ sanitized
    | _ -> sanitized

let prom_label_name name =
  let sanitized =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name
  in
  if sanitized = "" then "_"
  else
    match sanitized.[0] with
    | '0' .. '9' -> "_" ^ sanitized
    | _ -> sanitized

let prom_escape v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf {|\\|}
      | '"' -> Buffer.add_string buf {|\"|}
      | '\n' -> Buffer.add_string buf {|\n|}
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (prom_label_name k) (prom_escape v))
           labels)
    ^ "}"

let prom_number v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let prom_help = function
  | "messages_total" -> Some "Messages sent, by wire label."
  | "txn_total" -> Some "Finished transactions, by outcome, scheme and consistency."
  | "txn_latency_ms" -> Some "Submit-to-finish transaction latency (ms)."
  | "commit_rounds" -> Some "2PVC voting rounds per transaction."
  | "proofs_per_txn" -> Some "Proofs evaluated per transaction."
  | "phase_execute_ms" -> Some "Execution-phase duration (ms)."
  | "phase_commit_ms" -> Some "Commit-phase (2PVC) duration (ms)."
  | "phase_decide_ms" -> Some "Decision-distribution duration (ms)."
  | "proofs_total" -> Some "Proof evaluations, by server."
  | "log_force_total" -> Some "Forced log writes, by site."
  | "wal_append_total" -> Some "WAL appends, by server and record type."
  | "lock_acquire_total" -> Some "Lock acquisitions, by server and outcome."
  | "lock_promoted_total" -> Some "Queued lock requests promoted to holders."
  | "lock_killed_total" -> Some "Parked waiters killed by wait-die re-checks."
  | "lock_wait_ms" -> Some "Time parked on a lock before grant or death (ms)."
  | "policy_master_version" -> Some "Latest policy version at the master, by domain."
  | "policy_staleness" ->
    Some "Versions a server's policy replica trails the master, by domain."
  | "sim.pending_events" -> Some "Discrete-event engine queue depth."
  | "alerts_total" -> Some "Health alerts fired, by rule and severity."
  | "alerts_active" -> Some "Health alerts currently firing, by rule."
  | "journal.dropped" ->
    Some "Journal records evicted from the in-memory buffer by the byte cap."
  | _ -> None

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let last_name = ref None in
  List.iter
    (fun (name, labels, v) ->
      let pname = prom_name name in
      if !last_name <> Some name then begin
        last_name := Some name;
        (match prom_help name with
        | Some help -> Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" pname help)
        | None -> ());
        let kind =
          match v with
          | `Counter _ -> "counter"
          | `Gauge _ -> "gauge"
          | `Histogram _ -> "histogram"
        in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" pname kind)
      end;
      match v with
      | `Counter n ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" pname (prom_labels labels) n)
      | `Gauge g ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" pname (prom_labels labels) (prom_number g))
      | `Histogram h ->
        let count = Histogram.count h in
        let cumulative = ref 0 in
        List.iter
          (fun (le, n) ->
            cumulative := !cumulative + n;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" pname
                 (prom_labels (labels @ [ ("le", prom_number le) ]))
                 !cumulative))
          (Histogram.buckets h);
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket%s %d\n" pname
             (prom_labels (labels @ [ ("le", "+Inf") ]))
             count);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" pname (prom_labels labels)
             (prom_number (Histogram.sum h)));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" pname (prom_labels labels) count))
    (series t);
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i (name, labels, v) ->
      if i > 0 then Buffer.add_char buf ',';
      let labels_json =
        Json.obj (List.map (fun (k, lv) -> (k, Json.quote lv)) labels)
      in
      let fields =
        [ ("metric", Json.quote name); ("labels", labels_json) ]
        @
        match v with
        | `Counter n -> [ ("type", {|"counter"|}); ("value", string_of_int n) ]
        | `Gauge g -> [ ("type", {|"gauge"|}); ("value", Json.number g) ]
        | `Histogram h ->
          let p q =
            if Histogram.count h = 0 then "null"
            else Json.number (Histogram.percentile h q)
          in
          [
            ("type", {|"histogram"|});
            ("count", string_of_int (Histogram.count h));
            ("mean", Json.number (Histogram.mean h));
            ("min", if Histogram.count h = 0 then "null" else Json.number (Histogram.min h));
            ("max", if Histogram.count h = 0 then "null" else Json.number (Histogram.max h));
            ("p50", p 50.);
            ("p95", p 95.);
            ("p99", p 99.);
            ( "buckets",
              "["
              ^ String.concat ","
                  (List.map
                     (fun (le, n) ->
                       Json.obj
                         [ ("le", Json.number le); ("count", string_of_int n) ])
                     (Histogram.buckets h))
              ^ "]" );
          ]
      in
      Buffer.add_string buf (Json.obj fields))
    (series t);
  Buffer.add_char buf ']';
  Buffer.contents buf
