type event =
  | Txn_begin of { txn : string; node : string; scheme : string; level : string }
  | Txn_step of { txn : string }
  | Txn_end of { txn : string; committed : bool; reason : string; killed : bool }
  | Txn_latency of {
      txn : string;
      total_ms : float;
      execute_ms : float option;
      commit_ms : float option;
      decide_ms : float option;
    }
  | Master_version of { domain : string; version : int }
  | Replica_version of { node : string; domain : string; version : int }
  | Vote of { txn : string; node : string; vote : bool }
  | Proof_result of {
      txn : string;
      node : string;
      domain : string;
      version : int;
      result : bool;
    }
  | Breaker_transition of { server : string; from_ : string; to_ : string }
  | Admission_reject of { txn : string; reason : string; server : string option }
  | Activity of { node : string }

type txn_state = {
  tm_node : string;
  mutable last_step_at : float;
  mutable last_step_seq : int;
}

type replica_state = {
  mutable held : int;
  mutable lag_since : float option;  (* when the replica started lagging *)
}

type t = {
  rules : Slo.rules;
  registry : Registry.t;
  log : string -> unit;
  console : string -> unit;
  notify : [ `Fire | `Resolve ] -> Slo.alert -> unit;
  (* rule state *)
  txns : (string, txn_state) Hashtbl.t;  (* open transactions *)
  master : (string, int) Hashtbl.t;  (* domain -> observed master version *)
  replicas : (string * string, replica_state) Hashtbl.t;  (* node, domain *)
  peak_lag : (string, int * string) Hashtbl.t;  (* node -> worst lag, domain *)
  window : bool Queue.t;  (* last abort_window outcomes; true = abort *)
  mutable window_aborts : int;
  kills : (string, int) Hashtbl.t;  (* base txn -> consecutive wait-die *)
  yes_votes : (string * string, int) Hashtbl.t;  (* txn, node -> vote seq *)
  flips : (string, float Queue.t) Hashtbl.t;
      (* server -> breaker transition times inside the flap window *)
  rejects : float Queue.t;  (* admission rejection times inside the window *)
  (* alert state *)
  active : (string * string, Slo.alert) Hashtbl.t;  (* rule, subject *)
  mutable all : Slo.alert list;  (* reverse firing order *)
  mutable next_id : int;
  active_per_rule : (string, int) Hashtbl.t;
}

let create ?(rules = Slo.default) ?(registry = Registry.noop)
    ?(log = ignore) ?(console = ignore) ?(notify = fun _ _ -> ()) () =
  {
    rules;
    registry;
    log;
    console;
    notify;
    txns = Hashtbl.create 16;
    master = Hashtbl.create 4;
    replicas = Hashtbl.create 16;
    peak_lag = Hashtbl.create 16;
    window = Queue.create ();
    window_aborts = 0;
    kills = Hashtbl.create 8;
    yes_votes = Hashtbl.create 16;
    flips = Hashtbl.create 8;
    rejects = Queue.create ();
    active = Hashtbl.create 8;
    all = [];
    next_id = 0;
    active_per_rule = Hashtbl.create 8;
  }

let rules t = t.rules
let alerts t = List.rev t.all
let open_alerts t = List.filter Slo.is_open (alerts t)
let fired_total t = List.length t.all

let unresolved_critical t =
  List.length
    (List.filter (fun (a : Slo.alert) -> a.Slo.severity = Slo.Critical)
       (open_alerts t))

let staleness_peak t =
  Hashtbl.fold (fun node worst acc -> (node, worst) :: acc) t.peak_lag []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let open_txns t =
  Hashtbl.fold (fun txn _ acc -> txn :: acc) t.txns []
  |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* Alert lifecycle                                                     *)
(* ------------------------------------------------------------------ *)

let set_active_gauge t rule =
  if Registry.enabled t.registry then
    Registry.set_gauge t.registry "alerts_active"
      [ ("rule", rule) ]
      (float_of_int
         (Option.value ~default:0 (Hashtbl.find_opt t.active_per_rule rule)))

let fire t ~seq ~time_ms ~rule ~severity ~subject ~node ~detail =
  match Hashtbl.find_opt t.active (rule, subject) with
  | Some (a : Slo.alert) ->
    (* Already firing: extend the evidence range, refresh the cause. *)
    a.Slo.last_seq <- seq;
    a.Slo.detail <- detail
  | None ->
    t.next_id <- t.next_id + 1;
    let a =
      {
        Slo.id = t.next_id;
        rule;
        severity;
        subject;
        node;
        first_seq = seq;
        last_seq = seq;
        fired_at = time_ms;
        detail;
        resolved_at = None;
      }
    in
    Hashtbl.replace t.active (rule, subject) a;
    t.all <- a :: t.all;
    Hashtbl.replace t.active_per_rule rule
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.active_per_rule rule));
    if Registry.enabled t.registry then begin
      Registry.incr t.registry "alerts_total"
        [ ("rule", rule); ("severity", Slo.severity_name severity) ];
      set_active_gauge t rule
    end;
    t.console (Slo.console_line `Fire a);
    t.log (Slo.log_line `Fire a);
    t.notify `Fire a

let resolve t ~seq ~time_ms ~rule ~subject ~detail =
  match Hashtbl.find_opt t.active (rule, subject) with
  | None -> ()
  | Some (a : Slo.alert) ->
    Hashtbl.remove t.active (rule, subject);
    a.Slo.last_seq <- seq;
    a.Slo.detail <- detail;
    a.Slo.resolved_at <- Some time_ms;
    Hashtbl.replace t.active_per_rule rule
      (max 0
         (Option.value ~default:1 (Hashtbl.find_opt t.active_per_rule rule) - 1));
    set_active_gauge t rule;
    t.console (Slo.console_line `Resolve a);
    t.log (Slo.log_line `Resolve a);
    t.notify `Resolve a

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

(* stuck_txn: no TM machine step for > stuck_ms while unfinished. *)
let sweep_stuck t ~seq ~time_ms =
  if Float.is_finite t.rules.Slo.stuck_ms then
    Hashtbl.iter
      (fun txn (s : txn_state) ->
        let idle = time_ms -. s.last_step_at in
        if idle > t.rules.Slo.stuck_ms then
          fire t ~seq ~time_ms ~rule:"stuck_txn" ~severity:Slo.Critical
            ~subject:txn ~node:s.tm_node
            ~detail:
              (Printf.sprintf
                 "no machine step for %.1fms (last step seq %d at %.1fms)" idle
                 s.last_step_seq s.last_step_at))
      t.txns

let staleness_subject node domain = node ^ "/" ^ domain

(* policy_staleness: replica lags the observed master by more than
   [staleness_versions] versions, or by any amount for longer than
   [staleness_ms]. *)
let check_staleness t ~seq ~time_ms node domain =
  match Hashtbl.find_opt t.master domain with
  | None -> ()
  | Some master -> (
    match Hashtbl.find_opt t.replicas (node, domain) with
    | None -> ()
    | Some r ->
      let lag = master - r.held in
      (match Hashtbl.find_opt t.peak_lag node with
      | Some (worst, _) when worst >= lag -> ()
      | _ -> if lag > 0 then Hashtbl.replace t.peak_lag node (lag, domain));
      if lag <= 0 then begin
        r.lag_since <- None;
        resolve t ~seq ~time_ms ~rule:"policy_staleness"
          ~subject:(staleness_subject node domain)
          ~detail:(Printf.sprintf "replica caught up to master v%d" master)
      end
      else begin
        if r.lag_since = None then r.lag_since <- Some time_ms;
        let since = Option.value ~default:time_ms r.lag_since in
        if lag > t.rules.Slo.staleness_versions then
          fire t ~seq ~time_ms ~rule:"policy_staleness" ~severity:Slo.Warning
            ~subject:(staleness_subject node domain)
            ~node
            ~detail:
              (Printf.sprintf "replica holds v%d, master at v%d (%d versions)"
                 r.held master lag)
        else if time_ms -. since > t.rules.Slo.staleness_ms then
          fire t ~seq ~time_ms ~rule:"policy_staleness" ~severity:Slo.Warning
            ~subject:(staleness_subject node domain)
            ~node
            ~detail:
              (Printf.sprintf "replica holds v%d, master at v%d for %.1fms"
                 r.held master (time_ms -. since))
      end)

let sweep_staleness t ~seq ~time_ms =
  (* Only the timed arm needs a clock-driven sweep; the version arm is
     re-checked on every version observation. *)
  if Float.is_finite t.rules.Slo.staleness_ms then
    Hashtbl.iter
      (fun (node, domain) (r : replica_state) ->
        if r.lag_since <> None then check_staleness t ~seq ~time_ms node domain)
      t.replicas

let note_master t ~seq ~time_ms domain version =
  let prev = Option.value ~default:0 (Hashtbl.find_opt t.master domain) in
  if version > prev then begin
    Hashtbl.replace t.master domain version;
    Hashtbl.iter
      (fun (node, d) _ ->
        if String.equal d domain then check_staleness t ~seq ~time_ms node domain)
      t.replicas
  end

let note_replica t ~seq ~time_ms node domain version =
  (match Hashtbl.find_opt t.replicas (node, domain) with
  | Some r -> if version > r.held then r.held <- version
  | None ->
    Hashtbl.replace t.replicas (node, domain) { held = version; lag_since = None });
  (* A replica can only have evaluated against a version the master once
     published. *)
  note_master t ~seq ~time_ms domain version;
  check_staleness t ~seq ~time_ms node domain

(* abort_storm: abort fraction over the sliding outcome window. *)
let note_outcome t ~seq ~time_ms ~committed =
  let w = t.rules.Slo.abort_window in
  if w > 0 then begin
    Queue.push (not committed) t.window;
    if not committed then t.window_aborts <- t.window_aborts + 1;
    if Queue.length t.window > w then
      if Queue.pop t.window then t.window_aborts <- t.window_aborts - 1;
    let len = Queue.length t.window in
    if len >= w then begin
      let rate = float_of_int t.window_aborts /. float_of_int len in
      if rate >= t.rules.Slo.abort_rate then
        fire t ~seq ~time_ms ~rule:"abort_storm" ~severity:Slo.Critical
          ~subject:"cluster" ~node:"cluster"
          ~detail:
            (Printf.sprintf "%d of the last %d transactions aborted (%.0f%%)"
               t.window_aborts len (100. *. rate))
      else
        resolve t ~seq ~time_ms ~rule:"abort_storm" ~subject:"cluster"
          ~detail:
            (Printf.sprintf "abort rate back to %.0f%% over the last %d"
               (100. *. rate) len)
    end
  end

(* livelock: the same logical transaction killed k consecutive times.
   Restart attempts carry a "-r<N>" suffix (Experiment.run_open). *)
let base_txn txn =
  match String.rindex_opt txn '-' with
  | Some i
    when i + 1 < String.length txn
         && txn.[i + 1] = 'r'
         && (let rec digits j =
               j >= String.length txn
               || (txn.[j] >= '0' && txn.[j] <= '9' && digits (j + 1))
             in
             i + 2 < String.length txn && digits (i + 2)) ->
    String.sub txn 0 i
  | _ -> txn

let note_kill t ~seq ~time_ms txn ~killed ~committed =
  let base = base_txn txn in
  if killed then begin
    let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.kills base) in
    Hashtbl.replace t.kills base n;
    if n >= t.rules.Slo.livelock_kills then
      fire t ~seq ~time_ms ~rule:"livelock" ~severity:Slo.Warning ~subject:base
        ~node:("tm-" ^ txn)
        ~detail:
          (Printf.sprintf "wait-die killed %d consecutive times (latest %s)" n
             txn)
  end
  else begin
    Hashtbl.remove t.kills base;
    if committed then
      resolve t ~seq ~time_ms ~rule:"livelock" ~subject:base
        ~detail:(Printf.sprintf "%s committed" txn)
  end

(* vote_anomaly: a participant that voted YES whose later proof
   evaluation for the same transaction failed. *)
let note_vote t ~seq txn node vote =
  if vote then Hashtbl.replace t.yes_votes (txn, node) seq
  else Hashtbl.remove t.yes_votes (txn, node)

let note_proof t ~seq ~time_ms txn node domain ~result =
  if not result then
    match Hashtbl.find_opt t.yes_votes (txn, node) with
    | None -> ()
    | Some vote_seq ->
      fire t ~seq ~time_ms ~rule:"vote_anomaly" ~severity:Slo.Critical
        ~subject:txn ~node
        ~detail:
          (Printf.sprintf
             "%s voted YES at seq %d, then its %s proof evaluated FALSE" node
             vote_seq domain)

(* breaker_flap: one server's circuit breaker changed state at least
   [flap_transitions] times within the last [flap_window] ms — it is
   oscillating between trip and probe instead of holding a verdict. *)
let note_breaker t ~seq ~time_ms server ~from_ ~to_ =
  let w = t.rules.Slo.flap_window in
  if Float.is_finite w then begin
    let q =
      match Hashtbl.find_opt t.flips server with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace t.flips server q;
        q
    in
    Queue.push time_ms q;
    while (not (Queue.is_empty q)) && Queue.peek q < time_ms -. w do
      ignore (Queue.pop q)
    done;
    let n = Queue.length q in
    if n >= t.rules.Slo.flap_transitions then
      fire t ~seq ~time_ms ~rule:"breaker_flap" ~severity:Slo.Warning
        ~subject:server ~node:"resilience"
        ~detail:
          (Printf.sprintf
             "breaker changed state %d times within %.0fms (latest %s->%s)" n w
             from_ to_)
    else
      resolve t ~seq ~time_ms ~rule:"breaker_flap" ~subject:server
        ~detail:
          (Printf.sprintf "%d transitions in window (latest %s->%s)" n from_ to_)
  end

(* admission_storm: [reject_count] admission rejections — bounded
   in-flight or open-breaker fail-fasts — within [reject_window] ms. *)
let note_reject t ~seq ~time_ms ~txn ~reason ~server =
  let w = t.rules.Slo.reject_window in
  if Float.is_finite w then begin
    Queue.push time_ms t.rejects;
    while
      (not (Queue.is_empty t.rejects)) && Queue.peek t.rejects < time_ms -. w
    do
      ignore (Queue.pop t.rejects)
    done;
    let n = Queue.length t.rejects in
    let where =
      match server with Some s -> " at " ^ s | None -> ""
    in
    if n >= t.rules.Slo.reject_count then
      fire t ~seq ~time_ms ~rule:"admission_storm" ~severity:Slo.Warning
        ~subject:"cluster" ~node:"resilience"
        ~detail:
          (Printf.sprintf "%d rejections within %.0fms (latest %s: %s%s)" n w
             txn reason where)
    else
      resolve t ~seq ~time_ms ~rule:"admission_storm" ~subject:"cluster"
        ~detail:(Printf.sprintf "%d rejections in window" n)
  end

let forget_txn t txn =
  Hashtbl.remove t.txns txn;
  Hashtbl.filter_map_inplace
    (fun (vt, _) seq -> if String.equal vt txn then None else Some seq)
    t.yes_votes

(* ------------------------------------------------------------------ *)
(* Event dispatch                                                      *)
(* ------------------------------------------------------------------ *)

let observe t ~seq ~time_ms event =
  (match event with
  | Txn_begin { txn; node; scheme = _; level = _ } ->
    Hashtbl.replace t.txns txn
      { tm_node = node; last_step_at = time_ms; last_step_seq = seq }
  | Txn_step { txn } -> (
    match Hashtbl.find_opt t.txns txn with
    | None -> ()
    | Some s ->
      s.last_step_at <- time_ms;
      s.last_step_seq <- seq;
      resolve t ~seq ~time_ms ~rule:"stuck_txn" ~subject:txn
        ~detail:"machine stepped again")
  | Txn_end { txn; committed; reason; killed } ->
    resolve t ~seq ~time_ms ~rule:"stuck_txn" ~subject:txn
      ~detail:
        (Printf.sprintf "transaction finished (%s)"
           (if committed then "commit" else "abort: " ^ reason));
    if not committed then
      (* The abort contained whatever the YES vote would have admitted. *)
      resolve t ~seq ~time_ms ~rule:"vote_anomaly" ~subject:txn
        ~detail:(Printf.sprintf "transaction aborted (%s)" reason);
    forget_txn t txn;
    note_outcome t ~seq ~time_ms ~committed;
    note_kill t ~seq ~time_ms txn ~killed ~committed
  | Master_version { domain; version } -> note_master t ~seq ~time_ms domain version
  | Replica_version { node; domain; version } ->
    note_replica t ~seq ~time_ms node domain version
  | Txn_latency _ -> ()  (* consumed by Timeseries, not by any rule *)
  | Vote { txn; node; vote } -> note_vote t ~seq txn node vote
  | Proof_result { txn; node; domain; version; result } ->
    note_replica t ~seq ~time_ms node domain version;
    note_proof t ~seq ~time_ms txn node domain ~result
  | Breaker_transition { server; from_; to_ } ->
    note_breaker t ~seq ~time_ms server ~from_ ~to_
  | Admission_reject { txn; reason; server } ->
    note_reject t ~seq ~time_ms ~txn ~reason ~server
  | Activity _ -> ());
  sweep_stuck t ~seq ~time_ms;
  sweep_staleness t ~seq ~time_ms
