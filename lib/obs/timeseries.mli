(** Windowed time-series aggregation over simulated time.

    A time series slices sim-time into fixed-width windows (window [i]
    covers [[i*width_ms, (i+1)*width_ms)] — an observation exactly on an
    edge belongs to the window that {e starts} there) and accumulates,
    per window: transaction begin/commit/abort/kill counts, per-phase
    latency {!Sketch}es (fed by {!Monitor.Txn_latency}, attributed to
    the finish time like the registry's phase histograms), the worst
    policy-replica staleness observed inside the window, and alert
    fire/resolve transitions (via {!note_alert}, wired through
    {!Monitor.create}'s [notify]).

    It consumes the same neutral {!Monitor.event} stream the Watchtower
    does, so the two canonical feeds — live through
    [Journal.add_observer]/[Cloudtx_core.Health.attach], and offline by
    replaying a journal file — produce identical series by construction.
    Window assignment is purely a function of each record's [time_ms],
    so reordered journal records land in the right window.

    Memory is O(windows × bins): every window holds at most four
    sketches and a handful of counters, never raw samples. *)

type t

(** [create ()] — [width_ms] is the window width in simulated
    milliseconds (default [100.]; must be positive). *)
val create : ?width_ms:float -> unit -> t

val width_ms : t -> float

(** Events consumed so far. *)
val events : t -> int

(** Feed one event; [time_ms] selects the window. *)
val observe : t -> seq:int -> time_ms:float -> Monitor.event -> unit

(** Record an alert transition in the window of its transition time
    ([fired_at] for [`Fire], [resolved_at] for [`Resolve]). *)
val note_alert : t -> [ `Fire | `Resolve ] -> Slo.alert -> unit

(** {1 Reading the series} *)

(** Quantiles of one phase in one window, from its sketch. *)
type stats = { count : int; p50 : float; p99 : float; p999 : float; max : float }

type cell = {
  index : int;
  start_ms : float;
  begun : int;
  commits : int;
  aborts : int;
  killed : int;  (** Wait-die victims (a subset of [aborts]). *)
  staleness : int;  (** Worst replica version lag seen in the window. *)
  alerts_fired : int;
  alerts_resolved : int;
  alerts_open : int;  (** Cumulative open alerts at window end. *)
  phases : (string * stats) list;
      (** Phases with data, in ["execute"; "commit"; "decide"; "total"]
          order. *)
}

(** Whole-run aggregate: counters summed, [staleness] the overall peak,
    phase stats from the {e merged} per-window sketches (exactly the
    sketch of the full stream, by merge exactness). *)
type totals = {
  begun : int;
  commits : int;
  aborts : int;
  killed : int;
  staleness : int;
  alerts_fired : int;
  alerts_resolved : int;
  alerts_open : int;
  phases : (string * stats) list;
}

(** The dense window list, indices [0 .. max]: windows nothing landed in
    are rendered (all-zero), not skipped.  Empty when no event arrived. *)
val cells : t -> cell list

val totals : t -> totals

(** {1 Snapshot} *)

(** Snapshot-format version; bump on any line-shape change. *)
val format_version : int

(** The JSONL snapshot ([--metrics-out]): a header line
    [{"metrics":"cloudtx","version":V,"width_ms":W}], one line per
    window (dense), and a final [{"totals":{...}}] line.  The snapshot
    carries everything [Report] reads, so a report built from it equals
    one built from this series directly. *)
val to_jsonl : t -> string
