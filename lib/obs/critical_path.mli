(** Critical-path timelines and aggregate blame profiles.

    Protocol-blind half of the latency blame engine (DESIGN §9): the
    segment taxonomy, per-transaction timelines, the coverage invariant
    that makes a timeline a {e critical path}, and the bounded-memory
    aggregation into per-cell blame tables.  The protocol-aware half —
    turning flight-recorder records into timelines — lives above this
    library in [Cloudtx_core.Blame].

    A timeline partitions the transaction's end-to-end latency interval
    [[begun_ms, finished_ms]] into consecutive segments, each blamed on
    one causal step (a policy fetch, a 2PV round, a lock wait, ...).
    Because the segments tile the interval, their durations sum to the
    end-to-end latency exactly up to float summation error — the
    {!slack_bound_ms} documents that bound, and {!covered} checks it.
    The critical path of a sequential coordinator {e is} this tiling:
    every wall-clock moment of the transaction is attributed to exactly
    one dominating cause. *)

(** Where a slice of latency went.  [kind_name] spells the stable
    label used in JSON/markdown output. *)
type kind =
  | Queueing  (** submit → TM creation (admission queueing). *)
  | Policy_fetch  (** Master version round-trip. *)
  | Exec  (** Query shipping: Execute → Execute_reply round-trip. *)
  | Lock_wait  (** Server-side wait-die park (blocked → granted/killed). *)
  | Proof_eval  (** Server-side proof evaluation (Eval → Evaluated). *)
  | Validate_round  (** 2PV validation round-trip (incl. Update rounds). *)
  | Vote_round  (** 2PVC prepare/vote round-trip. *)
  | Decide  (** Decision propagation until the closing ack. *)
  | Retry_stall  (** Idle until a decision-retransmission timer fired. *)
  | Timeout_stall  (** Idle until a vote watchdog fired. *)
  | Inquiry_stall  (** Idle until a participant's Inquiry arrived. *)
  | Recovery  (** Coordinator crash → re-creation gap. *)
  | Other  (** Unclassified (unexpected record kind). *)

val kind_name : kind -> string
val all_kinds : kind list

type segment = {
  kind : kind;
  peer : string;  (** Attributed remote node ([""] when none). *)
  detail : string;  (** Round / query qualifier ([""] when none). *)
  phase : string;  (** ["execute"], ["commit"] or ["decide"]. *)
  start_ms : float;
  end_ms : float;
  seq : int;  (** Journal seq of the record that closed the segment. *)
}

val segment_ms : segment -> float

type timeline = {
  txn : string;
  node : string;  (** The coordinator's node name. *)
  scheme : string;
  level : string;
  committed : bool;
  reason : string;
  begun_ms : float;
  finished_ms : float;
  segments : segment list;  (** Chronological; tiles the interval. *)
}

val total_ms : timeline -> float

(** [|Σ segment durations − total|] — zero up to float summation. *)
val coverage_slack_ms : timeline -> float

(** The documented slack bound: [1e-6 + 1e-12 · |total| · n_segments]
    milliseconds.  The tiling makes each segment an exact float
    difference of adjacent record timestamps, so the only error is the
    non-telescoping summation of those differences — at most one ulp of
    the running sum per addition. *)
val slack_bound_ms : timeline -> float

(** Does the timeline cover the end-to-end latency within
    {!slack_bound_ms}?  [explain]/[blame] exit 1 when it does not. *)
val covered : timeline -> bool

(** Per-kind time totals of one timeline, largest first (ties broken by
    taxonomy order).  Head = the dominant segment kind. *)
val by_kind : timeline -> (kind * float) list

val dominant : timeline -> (kind * float) option

(** Per-phase time totals ([execute]/[commit]/[decide] order), for
    reconciliation against the registry's phase histograms. *)
val by_phase : timeline -> (string * float) list

val timeline_to_json : timeline -> string

(** Human-readable timeline with the critical path marked: one row per
    segment plus a per-kind blame summary. *)
val timeline_to_text : timeline -> string list

(** {1 Aggregation}

    Bounded-memory blame profiles: per scheme×level cell and segment
    kind, a {!Sketch} of per-transaction time-in-segment plus exact
    span counts and totals; globally, the top-k slowest transactions
    (their full timelines are the only unbounded-per-txn state kept,
    and there are at most [k] of them). *)

type agg

val agg_create : ?top_k:int -> unit -> agg

val agg_observe : agg -> timeline -> unit

type row = {
  row_kind : kind;
  row_txns : int;  (** Transactions with any time in this segment. *)
  row_spans : int;  (** Individual segments observed. *)
  row_total_ms : float;
  row_mean_ms : float;  (** Mean per-transaction time-in-segment. *)
  row_p50_ms : float;
  row_p99_ms : float;
  row_max_ms : float;
}

type cell = {
  cell_scheme : string;
  cell_level : string;
  cell_txns : int;
  cell_committed : int;
  cell_aborted : int;
  cell_total_ms : float;  (** Σ end-to-end latency over the cell. *)
  cell_rows : row list;  (** Sorted by [row_total_ms], largest first. *)
}

type slow = {
  slow_timeline : timeline;
  slow_dominant : kind;
  slow_dominant_ms : float;
}

(** Cells sorted by (scheme, level) name; rows blame-sorted. *)
val agg_cells : agg -> cell list

(** Top-k slowest transactions, slowest first (ties by txn id). *)
val agg_slowest : agg -> slow list

val agg_txns : agg -> int

(** Deterministic rendering — a pure function of the observed
    timelines, so live and offline collections agree byte-for-byte. *)
val agg_to_json : ?extra:(string * string) list -> agg -> string

val agg_to_markdown : agg -> string list
