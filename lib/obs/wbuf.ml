(* Allocation-lean byte writer for the binary journal hot path.

   [Buffer.t] pays a cross-module call and a resize check per byte, and
   extracting bytes for checksumming forces a [Buffer.contents] copy.
   This writer exposes its backing [Bytes.t] directly, so the journal
   frames a record (length prefix, FNV-1a checksum) with zero
   intermediate strings: one reserve, unsafe stores, and a single final
   blit into the entry. *)

type t = { mutable bytes : Bytes.t; mutable pos : int }

(* Unaligned 64-bit store; bounds are the caller's problem ([reserve]).
   Unlike [Bytes.set_int64_le] this lets the compiler keep the
   [Int64.bits_of_float] intermediate unboxed. *)
external unsafe_set_64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"

(* Unaligned 32-bit load, for the checksum's word loop.  The compiler
   keeps the [int32] unboxed because it is immediately converted to a
   tagged int. *)
external unsafe_get_32 : Bytes.t -> int -> int32 = "%caml_bytes_get32u"

let create n = { bytes = Bytes.create (max 16 n); pos = 0 }
let clear w = w.pos <- 0
let length w = w.pos
let unsafe_bytes w = w.bytes

let grow w needed =
  let cap = ref (max 16 (2 * Bytes.length w.bytes)) in
  while !cap < w.pos + needed do
    cap := 2 * !cap
  done;
  let b = Bytes.create !cap in
  Bytes.blit w.bytes 0 b 0 w.pos;
  w.bytes <- b

let[@inline] reserve w n =
  if w.pos + n > Bytes.length w.bytes then grow w n

let[@inline] u8 w n =
  reserve w 1;
  Bytes.unsafe_set w.bytes w.pos (Char.unsafe_chr (n land 0xff));
  w.pos <- w.pos + 1

let[@inline] char w c =
  reserve w 1;
  Bytes.unsafe_set w.bytes w.pos c;
  w.pos <- w.pos + 1

(* Unsigned LEB128; a 63-bit int needs at most 9 bytes. *)
let varint w n =
  reserve w 9;
  let b = w.bytes in
  let pos = ref w.pos and n = ref n in
  let continue = ref true in
  while !continue do
    let byte = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Bytes.unsafe_set b !pos (Char.unsafe_chr byte);
      continue := false
    end
    else Bytes.unsafe_set b !pos (Char.unsafe_chr (byte lor 0x80));
    incr pos
  done;
  w.pos <- !pos

let[@inline] set_u32_le_raw b pos n =
  Bytes.unsafe_set b pos (Char.unsafe_chr (n land 0xff));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((n lsr 8) land 0xff));
  Bytes.unsafe_set b (pos + 2) (Char.unsafe_chr ((n lsr 16) land 0xff));
  Bytes.unsafe_set b (pos + 3) (Char.unsafe_chr ((n lsr 24) land 0xff))

let u32_le w n =
  reserve w 4;
  set_u32_le_raw w.bytes w.pos n;
  w.pos <- w.pos + 4

(* Patch an already-written span (e.g. a length prefix reserved before
   the length was known). *)
let patch_u32_le w pos n =
  if pos < 0 || pos + 4 > w.pos then invalid_arg "Wbuf.patch_u32_le";
  set_u32_le_raw w.bytes pos n

let[@inline] f64_le w f =
  reserve w 8;
  unsafe_set_64 w.bytes w.pos (Int64.bits_of_float f);
  w.pos <- w.pos + 8

let str w s =
  let len = String.length s in
  reserve w len;
  let b = w.bytes and pos = w.pos in
  (* Short strings (field names, node ids) are the common case; a byte
     loop beats the blit's call overhead there. *)
  if len <= 12 then
    for i = 0 to len - 1 do
      Bytes.unsafe_set b (pos + i) (String.unsafe_get s i)
    done
  else Bytes.blit_string s 0 b pos len;
  w.pos <- pos + len

(* Varint-length-prefixed string in one reserve — the hottest shape in
   the payload codec (ids, keys, node names), almost always < 128 bytes
   so the length is a single byte. *)
let lstr w s =
  let len = String.length s in
  if len < 0x80 then begin
    reserve w (len + 1);
    let b = w.bytes and pos = w.pos in
    Bytes.unsafe_set b pos (Char.unsafe_chr len);
    if len <= 12 then
      for i = 0 to len - 1 do
        Bytes.unsafe_set b (pos + 1 + i) (String.unsafe_get s i)
      done
    else Bytes.blit_string s 0 b (pos + 1) len;
    w.pos <- pos + len + 1
  end
  else begin
    varint w len;
    str w s
  end

let add_wbuf dst src =
  reserve dst src.pos;
  Bytes.blit src.bytes 0 dst.bytes dst.pos src.pos;
  dst.pos <- dst.pos + src.pos

let contents w = Bytes.sub_string w.bytes 0 w.pos
let sub_string w pos len = Bytes.sub_string w.bytes pos len

(* Word-wise FNV-1a, 32-bit, over the written span — no copy.

   Standard byte-at-a-time FNV-1a is latency-bound: one 3-cycle multiply
   per byte, serially dependent.  This variant runs the same xor/multiply
   recurrence over 4-byte little-endian words (the 0-3 trailing bytes
   are folded byte-wise, so no padding ambiguity), which is ~3x faster
   and still provably detects any corruption: a flipped bit at position
   j <= 31 of a word flips bit j of the following product (the prime is
   odd, and lower bits are unchanged, so there is no carry into j), and
   that difference persists through every later step into the low 32
   bits kept at the end.  The per-step mask is skipped for the same
   reason as in byte-wise FNV: low 32 bits of the state never depend on
   higher bits. *)
let fnv1a_32 w pos len =
  let b = w.bytes in
  let h = ref 0x811c9dc5 in
  let i = ref pos in
  let last_word = pos + len - 4 in
  while !i <= last_word do
    let word = Int32.to_int (unsafe_get_32 b !i) land 0xffffffff in
    h := (!h lxor word) * 0x01000193;
    i := !i + 4
  done;
  let limit = pos + len in
  while !i < limit do
    h := (!h lxor Char.code (Bytes.unsafe_get b !i)) * 0x01000193;
    incr i
  done;
  !h land 0xffffffff
