(** Span exporters.

    {!to_chrome} renders Chrome [trace_event] JSON — load the file in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto} to see the
    transaction lifecycle laid out per node.  {!to_jsonl} emits one JSON
    object per span for ad-hoc processing (jq, pandas, consistency
    checkers that consume per-transaction event histories). *)

(** Chrome trace-event JSON.  Each distinct span track becomes a thread
    (named via [thread_name] metadata); spans are complete ([ph = "X"])
    events, instants are [ph = "i"].  Timestamps are microseconds as the
    format requires; the tracer's millisecond clock is scaled by 1000.
    Spans still open at export time are emitted with [dur = 0] and an
    ["open": true] argument.  A finished [lock.wait] span with a
    [killed_by] attribute additionally emits a flow-event pair
    ([ph = "s"]/["f"]) linking the wait-die victim to the killer
    transaction's [txn] span, so the UI draws the victim->killer arrow
    instead of burying the relationship in args. *)
val to_chrome : Tracer.t -> string

(** One JSON object per span: [id], [parent] (absent for roots), [name],
    [track], [start_ms], [end_ms] ([null] while open), [kind]
    (["span"] or ["instant"]) and [attrs]. *)
val to_jsonl : Tracer.t -> string
