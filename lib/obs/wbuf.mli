(** Allocation-lean byte writer for the binary journal hot path.

    A growable byte buffer that, unlike [Buffer.t], exposes its backing
    [Bytes.t]: the journal checksums and blits a record's body without
    materializing intermediate strings.  Binary payload encoders
    ({!Cloudtx_protocol.Codec_bin}) write into one of these.

    Not thread-safe; writers are meant to be reused ([clear]) across
    records. *)

type t

(** [create n] — a writer with [n] bytes preallocated. *)
val create : int -> t

(** Reset to empty; keeps the backing storage. *)
val clear : t -> unit

(** Bytes written so far. *)
val length : t -> int

(** The backing storage.  Only indices [< length w] hold written data,
    and the reference is invalidated by the next write (growth swaps the
    backing bytes) — read before writing again. *)
val unsafe_bytes : t -> Bytes.t

(** Ensure room for [n] more bytes (writers grow on demand anyway; this
    just hoists the check). *)
val reserve : t -> int -> unit

(** Append one byte (low 8 bits of the int). *)
val u8 : t -> int -> unit

val char : t -> char -> unit

(** Unsigned LEB128 varint. *)
val varint : t -> int -> unit

(** 32-bit little-endian. *)
val u32_le : t -> int -> unit

(** [patch_u32_le w pos n] overwrites 4 already-written bytes at [pos]
    (e.g. a length prefix reserved before the length was known). *)
val patch_u32_le : t -> int -> int -> unit

(** IEEE-754 binary64, little-endian bit pattern. *)
val f64_le : t -> float -> unit

(** Append raw string bytes (no length prefix). *)
val str : t -> string -> unit

(** [lstr w s] appends [varint (length s)] followed by [s] — the
    varint-length-prefixed string the payload codec uses for every
    string field, fused into a single bounds check. *)
val lstr : t -> string -> unit

(** [add_wbuf dst src] appends [src]'s written bytes to [dst]. *)
val add_wbuf : t -> t -> unit

val contents : t -> string
val sub_string : t -> int -> int -> string

(** [fnv1a_32 w pos len] — FNV-1a (32-bit) over a written span. *)
val fnv1a_32 : t -> int -> int -> int
