(** Watchtower: the streaming health engine.

    A monitor consumes the same per-record event stream the flight
    recorder journals — live (via {!Journal.add_observer}) or offline (a
    journal file replayed through [Cloudtx_core.Health]) — and evaluates
    the declarative {!Slo.rules} online.  Each rule owns a
    firing/resolved alert lifecycle; every transition lands in up to
    three sinks:

    + the metrics registry — [alerts_total{rule,severity}] counter and
      [alerts_active{rule}] gauge, so a Prometheus export carries the
      live alert state;
    + a structured JSONL alert log ({!Slo.log_line}, one record per
      transition);
    + human-readable console lines ({!Slo.console_line}).

    The monitor knows nothing about the wire protocol: it consumes the
    neutral {!event} vocabulary below.  The protocol-aware decoding of
    journal records into events lives in [Cloudtx_core.Health], above
    this library in the dependency order. *)

(** One observation, extracted from one journal record.  [Activity] is
    any record that proves a node made progress without carrying other
    health information — it still advances the monitor's clock. *)
type event =
  | Txn_begin of { txn : string; node : string; scheme : string; level : string }
  | Txn_step of { txn : string }  (** The transaction's TM took a step. *)
  | Txn_end of {
      txn : string;
      committed : bool;
      reason : string;
      killed : bool;  (** Wait-die victim (feeds the livelock rule). *)
    }
  | Txn_latency of {
      txn : string;
      total_ms : float;  (** Submit-to-finish. *)
      execute_ms : float option;  (** Submit to 2PVC prepare open. *)
      commit_ms : float option;  (** Prepare open to decision. *)
      decide_ms : float option;  (** Decision to finish. *)
    }
      (** Per-phase latency breakdown derived at transaction finish —
          no rule consumes it; it exists for {!Timeseries}. *)
  | Master_version of { domain : string; version : int }
      (** The policy master was observed to hold this version. *)
  | Replica_version of { node : string; domain : string; version : int }
      (** [node]'s replica was observed to hold this version. *)
  | Vote of { txn : string; node : string; vote : bool }
      (** A participant's forced-log prepare vote. *)
  | Proof_result of {
      txn : string;
      node : string;
      domain : string;
      version : int;
      result : bool;
    }
  | Breaker_transition of { server : string; from_ : string; to_ : string }
      (** A server's circuit breaker changed state
          (closed/open/half-open) — feeds the [breaker_flap] rule. *)
  | Admission_reject of { txn : string; reason : string; server : string option }
      (** The manager fast-failed a submit — bounded in-flight
          ([reason = "admission-rejected"]) or an open breaker
          ([reason = "breaker-open"], [server] named) — feeds the
          [admission_storm] rule. *)
  | Activity of { node : string }

type t

(** [create ()] — [rules] defaults to {!Slo.default}; [registry] (when
    live) receives the alert counters/gauges; [log] receives one
    {!Slo.log_line} per transition; [console] one {!Slo.console_line};
    [notify] sees every alert transition as a structured value (a fresh
    fire or a resolve — refreshes of an already-open alert do not
    re-notify), the hook {!Timeseries.note_alert} plugs into. *)
val create :
  ?rules:Slo.rules ->
  ?registry:Registry.t ->
  ?log:(string -> unit) ->
  ?console:(string -> unit) ->
  ?notify:([ `Fire | `Resolve ] -> Slo.alert -> unit) ->
  unit ->
  t

val rules : t -> Slo.rules

(** Feed one event.  [seq] and [time_ms] come from the journal record
    envelope; events must arrive in journal order. *)
val observe : t -> seq:int -> time_ms:float -> event -> unit

(** Every alert ever fired, in firing order. *)
val alerts : t -> Slo.alert list

(** Alerts currently firing, in firing order. *)
val open_alerts : t -> Slo.alert list

val fired_total : t -> int

(** Open alerts with severity {!Slo.Critical} — the exit-code gate for
    [cloudtx watch] and [cloudtx health]. *)
val unresolved_critical : t -> int

(** Worst replica lag observed per node over the whole run, as
    [(node, (versions, domain))], sorted by node. *)
val staleness_peak : t -> (string * (int * string)) list

(** Transactions currently open (begun, not ended). *)
val open_txns : t -> string list
