(** Minimal JSON rendering helpers shared by the observability exporters
    (and by {!Cloudtx_sim.Trace.to_jsonl}).

    Rendering only — parsing lives in [Cloudtx_policy.Json], which sits
    above this library in the dependency order. *)

(** [escape buf s] appends [s] to [buf] as a quoted JSON string literal,
    escaping quotes, backslashes and control characters. *)
val escape : Buffer.t -> string -> unit

(** [quote s] is [s] as a standalone JSON string literal. *)
val quote : string -> string

(** Finite floats render round-trippably; NaN and infinities render as
    [null] (JSON has no spelling for them). *)
val number : float -> string

(** [obj fields] renders [{"k":v, ...}]; values must already be valid
    JSON fragments. *)
val obj : (string * string) list -> string
