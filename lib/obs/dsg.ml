type node = { id : string; attrs : (string * string) list }

type edge = {
  src : string;
  dst : string;
  label : string;
  attrs : (string * string) list;
}

type t = { nodes : node list; edges : edge list }

let create ~nodes ~edges = { nodes; edges }

(* DOT string literal: double-quoted with backslash escaping for the two
   characters DOT treats specially inside quotes. *)
let dot_quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let dot_attrs attrs =
  match attrs with
  | [] -> ""
  | attrs ->
    Printf.sprintf " [%s]"
      (String.concat ", "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (dot_quote v)) attrs))

let to_dot ?(name = "dsg") t =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "digraph %s {\n" name);
  List.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf "  %s%s;\n" (dot_quote n.id) (dot_attrs n.attrs)))
    t.nodes;
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  %s -> %s%s;\n" (dot_quote e.src) (dot_quote e.dst)
           (dot_attrs (("label", e.label) :: e.attrs))))
    t.edges;
  Buffer.add_string b "}\n";
  Buffer.contents b

let json_fields fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> Json.quote k ^ ":" ^ v) fields)
  ^ "}"

let to_json t =
  let node n =
    json_fields
      (("id", Json.quote n.id)
      :: List.map (fun (k, v) -> (k, Json.quote v)) n.attrs)
  in
  let edge e =
    json_fields
      (("src", Json.quote e.src)
      :: ("dst", Json.quote e.dst)
      :: ("label", Json.quote e.label)
      :: List.map (fun (k, v) -> (k, Json.quote v)) e.attrs)
  in
  json_fields
    [
      ("nodes", "[" ^ String.concat "," (List.map node t.nodes) ^ "]");
      ("edges", "[" ^ String.concat "," (List.map edge t.edges) ^ "]");
    ]
