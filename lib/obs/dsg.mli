(** Labelled digraph with DOT/JSON export.

    Protocol-blind: nodes and edges carry opaque string attributes, so
    this stays in the observability layer (no protocol dependencies).
    The serializability certifier ({!Cloudtx_core.Certify}) renders its
    direct serialization graph through it; anything else that wants a
    graph artifact can too.

    Both exports are deterministic: elements render in the order given,
    attributes in the order given, no timestamps. *)

type node = { id : string; attrs : (string * string) list }

type edge = {
  src : string;
  dst : string;
  label : string;
  attrs : (string * string) list;
}

type t = { nodes : node list; edges : edge list }

val create : nodes:node list -> edges:edge list -> t

(** Graphviz DOT rendering ([digraph name { ... }]; default name
    ["dsg"]).  Node/edge attributes become DOT attributes verbatim;
    the edge [label] becomes its [label] attribute. *)
val to_dot : ?name:string -> t -> string

(** JSON rendering: [{"nodes":[{"id":...,attrs...}],
    "edges":[{"src":...,"dst":...,"label":...,attrs...}]}].
    Attribute keys must not collide with the fixed field names. *)
val to_json : t -> string
