let phase_names = [| "execute"; "commit"; "decide"; "total" |]
let n_phases = Array.length phase_names
let format_version = 1

type window = {
  mutable w_begun : int;
  mutable w_commits : int;
  mutable w_aborts : int;
  mutable w_killed : int;
  mutable w_staleness : int;
  mutable w_fired : int;
  mutable w_resolved : int;
  sketches : Sketch.t option array;  (* indexed like [phase_names] *)
}

type t = {
  width_ms : float;
  mutable windows : window option array;
  mutable max_index : int;  (* -1 until the first event *)
  mutable events : int;
  mutable staleness_peak : int;
  (* domain -> observed master version; (node, domain) -> replica version *)
  master : (string, int) Hashtbl.t;
  replicas : (string * string, int) Hashtbl.t;
}

let create ?(width_ms = 100.) () =
  if not (width_ms > 0.) then invalid_arg "Timeseries.create: width_ms <= 0";
  {
    width_ms;
    windows = Array.make 16 None;
    max_index = -1;
    events = 0;
    staleness_peak = 0;
    master = Hashtbl.create 4;
    replicas = Hashtbl.create 16;
  }

let width_ms t = t.width_ms
let events t = t.events

let fresh_window () =
  {
    w_begun = 0;
    w_commits = 0;
    w_aborts = 0;
    w_killed = 0;
    w_staleness = 0;
    w_fired = 0;
    w_resolved = 0;
    sketches = Array.make n_phases None;
  }

(* Window i covers [i*w, (i+1)*w): an observation exactly on an edge
   belongs to the window that starts there. *)
let index_of t time_ms =
  Stdlib.max 0 (int_of_float (Float.floor (time_ms /. t.width_ms)))

let window_at t i =
  if i >= Array.length t.windows then begin
    let n = ref (Array.length t.windows) in
    while i >= !n do
      n := !n * 2
    done;
    let grown = Array.make !n None in
    Array.blit t.windows 0 grown 0 (Array.length t.windows);
    t.windows <- grown
  end;
  if i > t.max_index then t.max_index <- i;
  match t.windows.(i) with
  | Some w -> w
  | None ->
    let w = fresh_window () in
    t.windows.(i) <- Some w;
    w

let sketch_at w phase =
  match w.sketches.(phase) with
  | Some s -> s
  | None ->
    let s = Sketch.create () in
    w.sketches.(phase) <- Some s;
    s

let record_phase w phase v = Sketch.observe (sketch_at w phase) v

(* ------------------------------------------------------------------ *)
(* Staleness tracking                                                  *)
(* ------------------------------------------------------------------ *)

let note_lag t w node domain =
  match Hashtbl.find_opt t.master domain with
  | None -> ()
  | Some master -> (
    match Hashtbl.find_opt t.replicas (node, domain) with
    | None -> ()
    | Some held ->
      let lag = master - held in
      if lag > w.w_staleness then w.w_staleness <- lag;
      if lag > t.staleness_peak then t.staleness_peak <- lag)

let note_master t w domain version =
  let prev = Option.value ~default:0 (Hashtbl.find_opt t.master domain) in
  if version > prev then begin
    Hashtbl.replace t.master domain version;
    Hashtbl.iter
      (fun (node, d) _ -> if String.equal d domain then note_lag t w node domain)
      t.replicas
  end

let note_replica t w node domain version =
  let prev = Option.value ~default:0 (Hashtbl.find_opt t.replicas (node, domain)) in
  if version > prev then Hashtbl.replace t.replicas (node, domain) version;
  (* A replica can only hold a version the master once published. *)
  note_master t w domain version;
  note_lag t w node domain

(* ------------------------------------------------------------------ *)
(* Event dispatch                                                      *)
(* ------------------------------------------------------------------ *)

let observe t ~seq:_ ~time_ms event =
  t.events <- t.events + 1;
  let w = window_at t (index_of t time_ms) in
  match event with
  | Monitor.Txn_begin _ -> w.w_begun <- w.w_begun + 1
  | Monitor.Txn_end { committed; killed; _ } ->
    if committed then w.w_commits <- w.w_commits + 1
    else begin
      w.w_aborts <- w.w_aborts + 1;
      if killed then w.w_killed <- w.w_killed + 1
    end
  | Monitor.Txn_latency { total_ms; execute_ms; commit_ms; decide_ms; _ } ->
    Option.iter (record_phase w 0) execute_ms;
    Option.iter (record_phase w 1) commit_ms;
    Option.iter (record_phase w 2) decide_ms;
    record_phase w 3 total_ms
  | Monitor.Master_version { domain; version } -> note_master t w domain version
  | Monitor.Replica_version { node; domain; version }
  | Monitor.Proof_result { node; domain; version; _ } ->
    note_replica t w node domain version
  | Monitor.Txn_step _ | Monitor.Vote _ | Monitor.Activity _
  | Monitor.Breaker_transition _ | Monitor.Admission_reject _ -> ()

let note_alert t transition (a : Slo.alert) =
  match transition with
  | `Fire ->
    let w = window_at t (index_of t a.Slo.fired_at) in
    w.w_fired <- w.w_fired + 1
  | `Resolve ->
    let at = Option.value ~default:a.Slo.fired_at a.Slo.resolved_at in
    let w = window_at t (index_of t at) in
    w.w_resolved <- w.w_resolved + 1

(* ------------------------------------------------------------------ *)
(* Reading the series                                                  *)
(* ------------------------------------------------------------------ *)

type stats = { count : int; p50 : float; p99 : float; p999 : float; max : float }

type cell = {
  index : int;
  start_ms : float;
  begun : int;
  commits : int;
  aborts : int;
  killed : int;
  staleness : int;
  alerts_fired : int;
  alerts_resolved : int;
  alerts_open : int;
  phases : (string * stats) list;
}

type totals = {
  begun : int;
  commits : int;
  aborts : int;
  killed : int;
  staleness : int;
  alerts_fired : int;
  alerts_resolved : int;
  alerts_open : int;
  phases : (string * stats) list;
}

let stats_of_sketch s =
  {
    count = Sketch.count s;
    p50 = Sketch.percentile s 50.;
    p99 = Sketch.percentile s 99.;
    p999 = Sketch.percentile s 99.9;
    max = Sketch.max s;
  }

let phases_of sketches =
  let out = ref [] in
  for p = n_phases - 1 downto 0 do
    match sketches.(p) with
    | Some s when Sketch.count s > 0 ->
      out := (phase_names.(p), stats_of_sketch s) :: !out
    | Some _ | None -> ()
  done;
  !out

let empty_window = fresh_window ()

let cells t =
  let open_alerts = ref 0 in
  List.init (t.max_index + 1) (fun i ->
      let w =
        match t.windows.(i) with Some w -> w | None -> empty_window
      in
      open_alerts := !open_alerts + w.w_fired - w.w_resolved;
      {
        index = i;
        start_ms = float_of_int i *. t.width_ms;
        begun = w.w_begun;
        commits = w.w_commits;
        aborts = w.w_aborts;
        killed = w.w_killed;
        staleness = w.w_staleness;
        alerts_fired = w.w_fired;
        alerts_resolved = w.w_resolved;
        alerts_open = !open_alerts;
        phases = phases_of w.sketches;
      })

let totals t =
  let begun = ref 0
  and commits = ref 0
  and aborts = ref 0
  and killed = ref 0
  and fired = ref 0
  and resolved = ref 0 in
  let merged = Array.make n_phases None in
  for i = 0 to t.max_index do
    match t.windows.(i) with
    | None -> ()
    | Some w ->
      begun := !begun + w.w_begun;
      commits := !commits + w.w_commits;
      aborts := !aborts + w.w_aborts;
      killed := !killed + w.w_killed;
      fired := !fired + w.w_fired;
      resolved := !resolved + w.w_resolved;
      Array.iteri
        (fun p sk ->
          match sk with
          | None -> ()
          | Some s ->
            let dst =
              match merged.(p) with
              | Some d -> d
              | None ->
                let d = Sketch.create ~sub_bits:(Sketch.sub_bits s) () in
                merged.(p) <- Some d;
                d
            in
            Sketch.merge_into dst s)
        w.sketches
  done;
  {
    begun = !begun;
    commits = !commits;
    aborts = !aborts;
    killed = !killed;
    staleness = t.staleness_peak;
    alerts_fired = !fired;
    alerts_resolved = !resolved;
    alerts_open = !fired - !resolved;
    phases = phases_of merged;
  }

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

let stats_json (s : stats) =
  Json.obj
    [
      ("count", string_of_int s.count);
      ("p50", Json.number s.p50);
      ("p99", Json.number s.p99);
      ("p999", Json.number s.p999);
      ("max", Json.number s.max);
    ]

let phases_json phases =
  Json.obj (List.map (fun (name, s) -> (name, stats_json s)) phases)

let to_jsonl t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Json.obj
       [
         ("metrics", {|"cloudtx"|});
         ("version", string_of_int format_version);
         ("width_ms", Json.number t.width_ms);
       ]);
  Buffer.add_char buf '\n';
  List.iter
    (fun (c : cell) ->
      Buffer.add_string buf
        (Json.obj
           [
             ("window", string_of_int c.index);
             ("start_ms", Json.number c.start_ms);
             ("begun", string_of_int c.begun);
             ("commits", string_of_int c.commits);
             ("aborts", string_of_int c.aborts);
             ("killed", string_of_int c.killed);
             ("staleness", string_of_int c.staleness);
             ("alerts_fired", string_of_int c.alerts_fired);
             ("alerts_resolved", string_of_int c.alerts_resolved);
             ("alerts_open", string_of_int c.alerts_open);
             ("phases", phases_json c.phases);
           ]);
      Buffer.add_char buf '\n')
    (cells t);
  let tot = totals t in
  Buffer.add_string buf
    (Json.obj
       [
         ( "totals",
           Json.obj
             [
               ("begun", string_of_int tot.begun);
               ("commits", string_of_int tot.commits);
               ("aborts", string_of_int tot.aborts);
               ("killed", string_of_int tot.killed);
               ("staleness", string_of_int tot.staleness);
               ("alerts_fired", string_of_int tot.alerts_fired);
               ("alerts_resolved", string_of_int tot.alerts_resolved);
               ("alerts_open", string_of_int tot.alerts_open);
               ("phases", phases_json tot.phases);
             ] );
       ]);
  Buffer.add_char buf '\n';
  Buffer.contents buf
