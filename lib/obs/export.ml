(* Chrome trace-event format reference:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU *)

let track_ids spans =
  let ids = Hashtbl.create 8 in
  let next = ref 1 in
  List.iter
    (fun (s : Tracer.span) ->
      if not (Hashtbl.mem ids s.Tracer.track) then begin
        Hashtbl.add ids s.Tracer.track !next;
        incr next
      end)
    spans;
  ids

let args_json attrs =
  Json.obj (List.rev_map (fun (k, v) -> (k, Json.quote v)) attrs)

let to_chrome t =
  let spans = Tracer.spans t in
  let tracks = track_ids spans in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf {|{"displayTimeUnit":"ms","traceEvents":[|};
  let first = ref true in
  let emit json =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_string buf json
  in
  (* Name each track so Perfetto shows node names instead of tid numbers. *)
  Hashtbl.fold (fun track tid acc -> (tid, track) :: acc) tracks []
  |> List.sort compare
  |> List.iter (fun (tid, track) ->
         emit
           (Json.obj
              [
                ("ph", {|"M"|});
                ("pid", "1");
                ("tid", string_of_int tid);
                ("name", {|"thread_name"|});
                ("args", Json.obj [ ("name", Json.quote track) ]);
              ]));
  List.iter
    (fun (s : Tracer.span) ->
      let tid = Hashtbl.find tracks s.Tracer.track in
      let ts = Json.number (s.Tracer.start *. 1000.) in
      let common =
        [
          ("name", Json.quote s.Tracer.name);
          ("pid", "1");
          ("tid", string_of_int tid);
          ("ts", ts);
        ]
      in
      let json =
        if s.Tracer.instant then
          Json.obj
            (common
            @ [ ("ph", {|"i"|}); ("s", {|"t"|}); ("args", args_json s.Tracer.attrs) ])
        else begin
          let open_span = Float.is_nan s.Tracer.finish in
          let dur =
            if open_span then "0"
            else Json.number ((s.Tracer.finish -. s.Tracer.start) *. 1000.)
          in
          let attrs =
            if open_span then ("open", "true") :: s.Tracer.attrs
            else s.Tracer.attrs
          in
          Json.obj
            (common @ [ ("ph", {|"X"|}); ("dur", dur); ("args", args_json attrs) ])
        end
      in
      emit json)
    spans;
  (* Victim -> killer flow arrows: a finished [lock.wait] span whose
     [killed_by] attribute names a transaction links to that transaction's
     [txn] span (attribute [txn=<id>]).  Chrome/Perfetto draw the arrow
     from the flow-start ("s") to the flow-finish ("f", binding point
     "e" = enclosing slice) with matching [id]s. *)
  let txn_spans = Hashtbl.create 8 in
  List.iter
    (fun (s : Tracer.span) ->
      if String.equal s.Tracer.name "txn" then
        match List.assoc_opt "txn" s.Tracer.attrs with
        | Some id when not (Hashtbl.mem txn_spans id) -> Hashtbl.add txn_spans id s
        | Some _ | None -> ())
    spans;
  let flow_id = ref 0 in
  List.iter
    (fun (victim : Tracer.span) ->
      if
        String.equal victim.Tracer.name "lock.wait"
        && not (Float.is_nan victim.Tracer.finish)
      then
        match List.assoc_opt "killed_by" victim.Tracer.attrs with
        | None -> ()
        | Some killer_txn -> (
          match Hashtbl.find_opt txn_spans killer_txn with
          | None -> ()
          | Some killer ->
            incr flow_id;
            let arrow ph tid ts extra =
              Json.obj
                ([
                   ("name", {|"killed_by"|});
                   ("cat", {|"flow"|});
                   ("ph", ph);
                   ("id", string_of_int !flow_id);
                   ("pid", "1");
                   ("tid", string_of_int tid);
                   ("ts", Json.number (ts *. 1000.));
                 ]
                @ extra)
            in
            let victim_tid = Hashtbl.find tracks victim.Tracer.track in
            let killer_tid = Hashtbl.find tracks killer.Tracer.track in
            (* The finish event must land inside the killer's txn slice;
               clamp in case the wait outlived it (decision in flight). *)
            let killer_end =
              if Float.is_nan killer.Tracer.finish then victim.Tracer.finish
              else Float.min victim.Tracer.finish killer.Tracer.finish
            in
            let killer_ts = Float.max killer.Tracer.start killer_end in
            emit (arrow {|"s"|} victim_tid victim.Tracer.finish []);
            emit (arrow {|"f"|} killer_tid killer_ts [ ("bp", {|"e"|}) ])))
    spans;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (s : Tracer.span) ->
      let fields =
        [ ("id", string_of_int s.Tracer.id) ]
        @ (if s.Tracer.parent = Tracer.no_span then []
           else [ ("parent", string_of_int s.Tracer.parent) ])
        @ [
            ("name", Json.quote s.Tracer.name);
            ("track", Json.quote s.Tracer.track);
            ("start_ms", Json.number s.Tracer.start);
            ( "end_ms",
              if Float.is_nan s.Tracer.finish then "null"
              else Json.number s.Tracer.finish );
            ("kind", if s.Tracer.instant then {|"instant"|} else {|"span"|});
            ("attrs", args_json s.Tracer.attrs);
          ]
      in
      Buffer.add_string buf (Json.obj fields);
      Buffer.add_char buf '\n')
    (Tracer.spans t);
  Buffer.contents buf
