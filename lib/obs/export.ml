(* Chrome trace-event format reference:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU *)

let track_ids spans =
  let ids = Hashtbl.create 8 in
  let next = ref 1 in
  List.iter
    (fun (s : Tracer.span) ->
      if not (Hashtbl.mem ids s.Tracer.track) then begin
        Hashtbl.add ids s.Tracer.track !next;
        incr next
      end)
    spans;
  ids

let args_json attrs =
  Json.obj (List.rev_map (fun (k, v) -> (k, Json.quote v)) attrs)

let to_chrome t =
  let spans = Tracer.spans t in
  let tracks = track_ids spans in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf {|{"displayTimeUnit":"ms","traceEvents":[|};
  let first = ref true in
  let emit json =
    if not !first then Buffer.add_char buf ',';
    first := false;
    Buffer.add_string buf json
  in
  (* Name each track so Perfetto shows node names instead of tid numbers. *)
  Hashtbl.fold (fun track tid acc -> (tid, track) :: acc) tracks []
  |> List.sort compare
  |> List.iter (fun (tid, track) ->
         emit
           (Json.obj
              [
                ("ph", {|"M"|});
                ("pid", "1");
                ("tid", string_of_int tid);
                ("name", {|"thread_name"|});
                ("args", Json.obj [ ("name", Json.quote track) ]);
              ]));
  List.iter
    (fun (s : Tracer.span) ->
      let tid = Hashtbl.find tracks s.Tracer.track in
      let ts = Json.number (s.Tracer.start *. 1000.) in
      let common =
        [
          ("name", Json.quote s.Tracer.name);
          ("pid", "1");
          ("tid", string_of_int tid);
          ("ts", ts);
        ]
      in
      let json =
        if s.Tracer.instant then
          Json.obj
            (common
            @ [ ("ph", {|"i"|}); ("s", {|"t"|}); ("args", args_json s.Tracer.attrs) ])
        else begin
          let open_span = Float.is_nan s.Tracer.finish in
          let dur =
            if open_span then "0"
            else Json.number ((s.Tracer.finish -. s.Tracer.start) *. 1000.)
          in
          let attrs =
            if open_span then ("open", "true") :: s.Tracer.attrs
            else s.Tracer.attrs
          in
          Json.obj
            (common @ [ ("ph", {|"X"|}); ("dur", dur); ("args", args_json attrs) ])
        end
      in
      emit json)
    spans;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (s : Tracer.span) ->
      let fields =
        [ ("id", string_of_int s.Tracer.id) ]
        @ (if s.Tracer.parent = Tracer.no_span then []
           else [ ("parent", string_of_int s.Tracer.parent) ])
        @ [
            ("name", Json.quote s.Tracer.name);
            ("track", Json.quote s.Tracer.track);
            ("start_ms", Json.number s.Tracer.start);
            ( "end_ms",
              if Float.is_nan s.Tracer.finish then "null"
              else Json.number s.Tracer.finish );
            ("kind", if s.Tracer.instant then {|"instant"|} else {|"span"|});
            ("attrs", args_json s.Tracer.attrs);
          ]
      in
      Buffer.add_string buf (Json.obj fields);
      Buffer.add_char buf '\n')
    (Tracer.spans t);
  Buffer.contents buf
