let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  escape buf s;
  Buffer.contents buf

let number f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let obj fields =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      escape buf k;
      Buffer.add_char buf ':';
      Buffer.add_string buf v)
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf
