type severity = Info | Warning | Critical

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Critical -> "critical"

let format_version = 1

type rules = {
  stuck_ms : float;
  staleness_versions : int;
  staleness_ms : float;
  abort_window : int;
  abort_rate : float;
  livelock_kills : int;
  flap_window : float;
  flap_transitions : int;
  reject_window : float;
  reject_count : int;
}

let default =
  {
    stuck_ms = 1000.;
    staleness_versions = 3;
    staleness_ms = infinity;
    abort_window = 20;
    abort_rate = 0.5;
    livelock_kills = 3;
    flap_window = 1000.;
    flap_transitions = 4;
    reject_window = 1000.;
    reject_count = 10;
  }

type alert = {
  id : int;
  rule : string;
  severity : severity;
  subject : string;
  node : string;
  first_seq : int;
  mutable last_seq : int;
  fired_at : float;
  mutable detail : string;
  mutable resolved_at : float option;
}

let is_open a = a.resolved_at = None

let transition_name = function `Fire -> "fire" | `Resolve -> "resolve"

let transition_time transition a =
  match (transition, a.resolved_at) with
  | `Resolve, Some t -> t
  | (`Fire | `Resolve), _ -> a.fired_at

let console_line transition a =
  Printf.sprintf "%s %s %s %s (%s) seq %d..%d at %.1fms: %s"
    (match transition with `Fire -> "ALERT" | `Resolve -> "RESOLVED")
    a.rule (severity_name a.severity) a.subject a.node a.first_seq a.last_seq
    (transition_time transition a)
    a.detail

let log_line transition a =
  Json.obj
    [
      ("event", Json.quote (transition_name transition));
      ("rule", Json.quote a.rule);
      ("severity", Json.quote (severity_name a.severity));
      ("subject", Json.quote a.subject);
      ("node", Json.quote a.node);
      ("first_seq", string_of_int a.first_seq);
      ("last_seq", string_of_int a.last_seq);
      ("time_ms", Json.number (transition_time transition a));
      ("detail", Json.quote a.detail);
    ]

let log_header =
  Printf.sprintf "{\"alerts\":\"cloudtx\",\"version\":%d}" format_version
