module Sample_set = Cloudtx_metrics.Sample_set

(* Bucket i covers (2^(i + lo_exp - 1), 2^(i + lo_exp)]; exponents are
   clamped to [lo_exp, hi_exp], wide enough for sub-microsecond through
   multi-hour latencies in milliseconds. *)
let lo_exp = -16
let hi_exp = 47
let n_buckets = hi_exp - lo_exp + 1

type t = { samples : Sample_set.t; counts : int array; mutable sum : float }

let create () =
  { samples = Sample_set.create (); counts = Array.make n_buckets 0; sum = 0. }

let bucket_index v =
  if v <= 0. || Float.is_nan v then 0
  else begin
    (* frexp: v = m * 2^e with m in [0.5, 1), so 2^(e-1) <= v < 2^e and
       the smallest power of two >= v is 2^e (or 2^(e-1) when m = 0.5,
       which the <= below keeps in the lower bucket). *)
    let m, e = Float.frexp v in
    let e = if m = 0.5 then e - 1 else e in
    Stdlib.min (n_buckets - 1) (Stdlib.max 0 (e - lo_exp))
  end

let observe t v =
  Sample_set.add t.samples v;
  t.sum <- t.sum +. v;
  let i = bucket_index v in
  t.counts.(i) <- t.counts.(i) + 1

let count t = Sample_set.count t.samples
let sum t = t.sum
let mean t = Sample_set.mean t.samples
let min t = Sample_set.min t.samples
let max t = Sample_set.max t.samples
let percentile t p = Sample_set.percentile t.samples p

let buckets t =
  let out = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then
      out := (Float.ldexp 1. (i + lo_exp), t.counts.(i)) :: !out
  done;
  !out

let samples t = t.samples
