module Sample_set = Cloudtx_metrics.Sample_set

(* Bucket i covers (2^(i + lo_exp - 1), 2^(i + lo_exp)]; exponents are
   clamped to [lo_exp, hi_exp], wide enough for sub-microsecond through
   multi-hour latencies in milliseconds. *)
let lo_exp = -16
let hi_exp = 47
let n_buckets = hi_exp - lo_exp + 1

type backend = Exact | Sketch

type exact = {
  samples : Sample_set.t;
  counts : int array;
  mutable sum : float;
}

type t = E of exact | S of Sketch.t

let create ?(backend = Exact) () =
  match backend with
  | Exact ->
    E
      {
        samples = Sample_set.create ();
        counts = Array.make n_buckets 0;
        sum = 0.;
      }
  | Sketch -> S (Sketch.create ())

let backend = function E _ -> Exact | S _ -> Sketch
let samples = function E e -> Some e.samples | S _ -> None
let sketch = function E _ -> None | S s -> Some s

let bucket_index v =
  if v <= 0. || Float.is_nan v then 0
  else begin
    (* frexp: v = m * 2^e with m in [0.5, 1), so 2^(e-1) <= v < 2^e and
       the smallest power of two >= v is 2^e (or 2^(e-1) when m = 0.5,
       which the <= below keeps in the lower bucket). *)
    let m, e = Float.frexp v in
    let e = if m = 0.5 then e - 1 else e in
    Stdlib.min (n_buckets - 1) (Stdlib.max 0 (e - lo_exp))
  end

let observe t v =
  match t with
  | E e ->
    Sample_set.add e.samples v;
    e.sum <- e.sum +. v;
    let i = bucket_index v in
    e.counts.(i) <- e.counts.(i) + 1
  | S s -> Sketch.observe s v

let count = function
  | E e -> Sample_set.count e.samples
  | S s -> Sketch.count s

let sum = function E e -> e.sum | S s -> Sketch.sum s
let mean = function E e -> Sample_set.mean e.samples | S s -> Sketch.mean s
let min = function E e -> Sample_set.min e.samples | S s -> Sketch.min s
let max = function E e -> Sample_set.max e.samples | S s -> Sketch.max s

let percentile t p =
  match t with
  | E e -> Sample_set.percentile e.samples p
  | S s -> Sketch.percentile s p

let buckets = function
  | E e ->
    let out = ref [] in
    for i = n_buckets - 1 downto 0 do
      if e.counts.(i) > 0 then
        out := (Float.ldexp 1. (i + lo_exp), e.counts.(i)) :: !out
    done;
    !out
  | S s -> Sketch.bins s

let retained_words = function
  | E e -> Sample_set.count e.samples + n_buckets + 4
  | S s -> Sketch.memory_words s
