(** Run report: the rendered view of a {!Timeseries}.

    A report is pure data — per-window counters and phase quantiles plus
    whole-run totals — rendered two ways: machine-readable JSON
    ({!to_json}) and human-readable markdown ({!to_markdown}).  It can
    be built directly from a {!Timeseries} ({!of_timeseries}) or
    reconstructed from a snapshot JSONL (see [Cloudtx_core.Report_io]);
    both constructions carry the same numbers, so the two JSON renderings
    are byte-identical — the online/offline agreement gate.

    {b Saturation-knee heuristic} (first cut, see DESIGN §8): the knee is
    the first window [i] with total-phase data such that its p99 is at
    least [1.5×] the minimum p99 over earlier windows with data, while
    throughput has flattened — the window finished at most [1.1×] the
    best earlier window's count.  [None] when no window qualifies
    (fewer than two windows with latency data, or latency never
    inflects). *)

type stats = { count : int; p50 : float; p99 : float; p999 : float; max : float }

type window = {
  index : int;
  start_ms : float;
  begun : int;
  commits : int;
  aborts : int;
  killed : int;
  staleness : int;
  alerts_fired : int;
  alerts_resolved : int;
  alerts_open : int;
  phases : (string * stats) list;
}

type totals = {
  begun : int;
  commits : int;
  aborts : int;
  killed : int;
  staleness : int;
  alerts_fired : int;
  alerts_resolved : int;
  alerts_open : int;
  phases : (string * stats) list;
}

type t = {
  width_ms : float;
  windows : window list;
  totals : totals;
  knee : int option;  (** Window index of the detected saturation knee. *)
}

(** [make ~width_ms ~windows ~totals] assembles a report and runs the
    knee detector — the constructor snapshot parsing goes through. *)
val make : width_ms:float -> windows:window list -> totals:totals -> t

val of_timeseries : Timeseries.t -> t

(** Finished transactions per second in a window (commits + aborts over
    the window width). *)
val throughput : t -> window -> float

(** Machine-readable report.  Contains nothing wall-clock- or
    path-dependent: two reports over the same series render the same
    bytes. *)
val to_json : t -> string

(** Rendered markdown: throughput curve, per-phase quantiles per window,
    commit/abort mix, staleness trajectory, alert overlay and the knee
    callout.  [alert_lines] (e.g. {!Slo.console_line} renderings, or raw
    alert-log records) are appended as an alert-timeline section when
    non-empty; [blame_lines] (a pre-rendered markdown blame section,
    e.g. [Cloudtx_core.Blame.to_markdown_lines]) follow it — the blame
    decomposition rides on the markdown view only, so {!to_json} stays
    a pure function of the series and the online/offline byte-identity
    gate is unaffected. *)
val to_markdown :
  ?alert_lines:string list -> ?blame_lines:string list -> t -> string
