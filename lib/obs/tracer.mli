(** Span tracing for the transaction lifecycle.

    A span is a named interval with a start/end time, a parent link, a
    track (the node it happened on) and key/value attributes.  The
    protocol layers open spans such as ["txn"], ["query"], ["proof_eval"],
    ["2pv.round"], ["2pvc.prepare"], ["2pvc.validate"], ["2pvc.commit"],
    ["wal.force"] and ["lock.wait"]; {!Export} renders them as Chrome
    [trace_event] JSON (loadable in [chrome://tracing] / Perfetto) or as
    JSONL.

    The clock is injected — the simulator passes simulated time, so traces
    are deterministic across runs.

    Zero cost when disabled: {!noop} never records, {!start} returns
    {!no_span} (an immediate int) and every operation is a single branch.
    Instrumentation that builds dynamic names or attribute lists must
    guard on {!enabled} so the disabled path allocates nothing. *)

type t

type span = {
  id : int;
  parent : int;  (** [no_span] when the span has no parent. *)
  name : string;
  track : string;  (** Node / thread the span belongs to. *)
  start : float;
  mutable finish : float;  (** [nan] while the span is open. *)
  mutable attrs : (string * string) list;  (** Newest first. *)
  instant : bool;  (** Zero-duration point event. *)
}

(** The id returned for every span when tracing is disabled. *)
val no_span : int

(** Shared disabled tracer; all operations are no-ops. *)
val noop : t

(** [create ~clock ()] builds a live tracer; [clock] supplies timestamps
    (milliseconds by convention). *)
val create : clock:(unit -> float) -> unit -> t

val enabled : t -> bool

(** [start t ~track name] opens a span and returns its id ([no_span] when
    disabled). *)
val start : t -> ?parent:int -> ?track:string -> string -> int

(** [set_attr t id key value] attaches an attribute to an open or finished
    span; unknown ids (including [no_span]) are ignored. *)
val set_attr : t -> int -> string -> string -> unit

(** [finish t id] closes the span at the current clock; repeated or
    unknown ids are ignored. *)
val finish : t -> ?attrs:(string * string) list -> int -> unit

(** [instant t ~track name] records a zero-duration point event. *)
val instant :
  t -> ?parent:int -> ?track:string -> ?attrs:(string * string) list -> string -> unit

(** All spans ordered by start time (ties by id, i.e. creation order).
    Open spans appear with [finish = nan]. *)
val spans : t -> span list

(** Number of spans recorded so far. *)
val length : t -> int

val clear : t -> unit
