(** Protocol flight recorder: an append-only event journal.

    Records every protocol machine step — machine creation, each input
    fed to a machine, and each action the machine emitted in response —
    as one JSON object per line (JSONL).  The payload is an opaque,
    already-rendered JSON fragment supplied by the caller (the protocol
    codec lives above this library in the dependency order); the journal
    only wraps it in the record envelope

    {[ {"seq":N,"time_ms":T,"node":"...","dir":"...","payload":...} ]}

    preceded by a single header line [{"journal":"cloudtx","version":V}].
    [seq] starts at 1 and increases by exactly 1 per record, so a gap
    proves a dropped record.  [dir] is ["create"], ["input"] or
    ["action"].

    The journal buffers every line in memory ({!to_string}) and, when
    opened with a [path], also writes each line through to the file as it
    is recorded, so a crash loses at most the final partial line.

    Zero cost when disabled: {!noop} never records and every operation is
    a single branch.  Instrumentation that renders payloads must guard on
    {!enabled} so the disabled path allocates nothing. *)

type t

(** Shared disabled journal; all operations are no-ops. *)
val noop : t

(** [create ~clock ?path ()] builds a live journal; [clock] supplies
    timestamps (milliseconds by convention).  With [path] every line is
    also written through to that file (truncating it first). *)
val create : clock:(unit -> float) -> ?path:string -> unit -> t

val enabled : t -> bool

(** [record t ~node ~dir ~payload] appends one record; [payload] must be
    a valid, canonically-rendered JSON fragment. *)
val record : t -> node:string -> dir:string -> payload:string -> unit

(** Number of records appended so far (excluding the header line). *)
val length : t -> int

(** The full journal — header line plus every record, newline-terminated. *)
val to_string : t -> string

(** Flush and close the write-through file, if any; idempotent.  The
    in-memory buffer stays readable. *)
val close : t -> unit
