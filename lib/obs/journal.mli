(** Protocol flight recorder: an append-only event journal.

    Records every protocol machine step — machine creation, each input
    fed to a machine, and each action the machine emitted in response —
    as one JSON object per line (JSONL).  The payload is an opaque,
    already-rendered JSON fragment supplied by the caller (the protocol
    codec lives above this library in the dependency order); the journal
    only wraps it in the record envelope

    {[ {"seq":N,"time_ms":T,"node":"...","dir":"...","payload":...} ]}

    preceded by a single header line [{"journal":"cloudtx","version":V}].
    [seq] starts at 1 and increases by exactly 1 per record, so a gap
    proves a dropped record.  [dir] is ["create"], ["input"] or
    ["action"].

    The journal buffers every line in memory ({!to_string}) and, when
    opened with a [path], also writes each line through to the file as it
    is recorded, so a crash loses at most the final partial line.  The
    in-memory buffer is bounded by [max_buffer_bytes]: once exceeded, the
    oldest buffered lines are evicted (drop-oldest) and counted in
    {!dropped} — the resulting [seq] gap is exactly what the replay
    auditor flags, so a truncated buffer is self-describing.  Eviction
    never affects the write-through file or {!set_observer} delivery.

    Zero cost when disabled: {!noop} never records and every operation is
    a single branch.  Instrumentation that renders payloads must guard on
    {!enabled} so the disabled path allocates nothing. *)

type t

(** Shared disabled journal; all operations are no-ops. *)
val noop : t

(** [create ~clock ?max_buffer_bytes ?path ()] builds a live journal;
    [clock] supplies timestamps (milliseconds by convention).
    [max_buffer_bytes] caps the in-memory buffer (default: unbounded).
    With [path] every line is also written through to that file
    (truncating it first). *)
val create :
  clock:(unit -> float) -> ?max_buffer_bytes:int -> ?path:string -> unit -> t

val enabled : t -> bool

(** [set_observer t f] registers a streaming tap: [f] is called once per
    record, after it is journaled, with the envelope fields and the raw
    payload.  This is how the live health monitor ([run --monitor]) sees
    the same stream a [watch <file>] replay does.  One observer; a second
    call replaces the first.  No-op on {!noop}. *)
val set_observer :
  t ->
  (seq:int -> time_ms:float -> node:string -> dir:string -> payload:string -> unit) ->
  unit

(** [set_on_drop t f] — [f n] is called whenever [n] buffered records are
    evicted by the byte cap (for wiring a [journal.dropped] counter). *)
val set_on_drop : t -> (int -> unit) -> unit

(** Total records evicted from the in-memory buffer so far. *)
val dropped : t -> int

(** [record t ~node ~dir ~payload] appends one record; [payload] must be
    a valid, canonically-rendered JSON fragment. *)
val record : t -> node:string -> dir:string -> payload:string -> unit

(** Number of records appended so far (excluding the header line). *)
val length : t -> int

(** The full journal — header line plus every record, newline-terminated. *)
val to_string : t -> string

(** Flush and close the write-through file, if any; idempotent.  The
    in-memory buffer stays readable. *)
val close : t -> unit
