(** Protocol flight recorder: an append-only event journal.

    Records every protocol machine step — machine creation, each input
    fed to a machine, and each action the machine emitted in response —
    in one of two formats sharing the same record semantics:

    - {b Jsonl} (export/debug view): one JSON object per line,

    {[ {"seq":N,"time_ms":T,"node":"...","dir":"...","payload":...} ]}

      preceded by a single header line
      [{"journal":"cloudtx","version":V}].  The payload is an opaque,
      already-rendered JSON fragment supplied by the caller (the
      protocol codec lives above this library in the dependency order).

    - {b Binary} (hot path): a 5-byte header ["CTXJ" ^ version] followed
      by length-prefixed, FNV-1a-checksummed frames carrying the same
      envelope fields (seq, time_ms, node, dir) plus raw payload bytes.
      The frame grammar is payload-agnostic; the typed payload encoding
      lives in [Cloudtx_protocol.Codec_bin].  See DESIGN.md for the full
      grammar.

    [seq] starts at 1 and increases by exactly 1 per record, so a gap
    proves a dropped record.  [dir] is ["create"], ["input"] or
    ["action"].

    The journal buffers every encoded entry in memory ({!to_string})
    and, when opened with a [path], also writes each entry through to
    the file as it is recorded, so a crash loses at most the final
    partial entry.  The in-memory buffer is bounded by
    [max_buffer_bytes], charged in {e actual encoded bytes per format}
    (JSONL lines pay for their newline; binary frames are
    self-delimiting): once exceeded, the oldest buffered entries are
    evicted (drop-oldest) and counted in {!dropped} — the resulting
    [seq] gap is exactly what the replay auditor flags, so a truncated
    buffer is self-describing.  Eviction never affects the write-through
    file or {!add_observer} delivery.

    Zero cost when disabled: {!noop} never records and every operation is
    a single branch.  Instrumentation that renders payloads must guard on
    {!enabled} so the disabled path allocates nothing. *)

type t

type format = Jsonl | Binary

val format_name : format -> string

(** Accepts ["jsonl"]/["json"] and ["bin"]/["binary"]. *)
val format_of_string : string -> format option

(** Shared disabled journal; all operations are no-ops. *)
val noop : t

(** [create ~clock ?format ?max_buffer_bytes ?path ()] builds a live
    journal; [clock] supplies timestamps (milliseconds by convention).
    [format] selects the encoding (default {!Jsonl}).
    [max_buffer_bytes] caps the in-memory buffer (default: unbounded).
    With [path] every entry is also written through to that file
    (truncating it first). *)
val create :
  clock:(unit -> float) ->
  ?format:format ->
  ?max_buffer_bytes:int ->
  ?path:string ->
  unit ->
  t

val enabled : t -> bool

(** The journal's encoding.  Callers rendering payloads must dispatch on
    this: JSON text for {!Jsonl}, [Codec_bin] bytes for {!Binary}. *)
val format : t -> format

(** [add_observer t f] registers a streaming tap: [f] is called once per
    record, after it is journaled, with the envelope fields and the raw
    payload ({e in the journal's format} — JSON text for a JSONL journal,
    [Codec_bin] bytes for a binary one).  This is how the live health
    monitor ([run --monitor]) and the blame collector see the same
    stream a [watch <file>] replay does.  Observers form a list and are
    invoked in registration order, so the monitor, time-series bridge
    and blame collector compose without hand-threading one bridge; an
    empty list costs a single branch per record.  No-op on {!noop}. *)
val add_observer :
  t ->
  (seq:int -> time_ms:float -> node:string -> dir:string -> payload:string -> unit) ->
  unit

(** [set_on_drop t f] — [f n] is called whenever [n] buffered records are
    evicted by the byte cap (for wiring a [journal.dropped] counter). *)
val set_on_drop : t -> (int -> unit) -> unit

(** Total records evicted from the in-memory buffer so far. *)
val dropped : t -> int

(** [record t ~node ~dir ~payload] appends one record; [payload] must be
    a valid, canonically-rendered JSON fragment for a JSONL journal, or
    the raw [Codec_bin] payload bytes for a binary one. *)
val record : t -> node:string -> dir:string -> payload:string -> unit

(** [record_bytes t ~node ~dir ~emit] — allocation-lean append for JSONL
    journals: [emit] renders the payload as JSON text directly into the
    journal's reused scratch buffer, skipping the intermediate payload
    string.  Also works on a binary journal (the rendered text becomes
    the frame's raw payload bytes), but binary sinks should prefer
    {!record_frame}.  [emit] is not called when the journal is
    disabled. *)
val record_bytes :
  t -> node:string -> dir:string -> emit:(Buffer.t -> unit) -> unit

(** [record_frame t ~node ~dir ~emit] — allocation-lean append for
    binary journals: [emit] writes raw payload bytes (a [Codec_bin]
    emitter) straight into the journal's reused frame writer; the record
    is framed with no intermediate copies.  [emit] is not called when
    the journal is disabled.

    @raise Invalid_argument on a live JSONL journal, whose payloads must
    be JSON text. *)
val record_frame :
  t -> node:string -> dir:string -> emit:(Wbuf.t -> unit) -> unit

(** Number of records appended so far (excluding the header). *)
val length : t -> int

(** The full journal — header plus every buffered entry, exactly as the
    write-through file would contain them. *)
val to_string : t -> string

(** Flush and close the write-through file, if any; idempotent.  The
    in-memory buffer stays readable. *)
val close : t -> unit

(** {1 Format internals}

    Shared with [Cloudtx_core.Journal_io] (conversion, auto-detection)
    and the corruption tests. *)

val format_version : int

(** The JSONL header line (current version), and its rendering at an
    arbitrary version (for converting older journals). *)
val header : string

val render_header : version:int -> string

(** [render_jsonl ~seq ~time_ms ~node ~dir ~payload] is the canonical
    JSONL record envelope around an already-rendered JSON payload —
    byte-identical to what a JSONL journal writes. *)
val render_jsonl :
  seq:int -> time_ms:float -> node:string -> dir:string -> payload:string ->
  string

(** ["CTXJ"], and the 5-byte binary file header. *)
val binary_magic : string

val binary_header : version:int -> string

(** [is_binary s] — does [s] start with the binary magic? *)
val is_binary : string -> bool

(** [encode_frame buf ~seq ~time_ms ~node ~dir ~emit] appends one
    complete binary frame (length prefix, body, checksum) to [buf];
    [emit] writes the raw payload bytes into the frame-body writer.
    This is the converter's building block — the journal itself uses an
    internal variant of the same encoding.  Not reentrant: [emit] must
    not itself call [encode_frame]. *)
val encode_frame :
  Buffer.t ->
  seq:int ->
  time_ms:float ->
  node:string ->
  dir:string ->
  emit:(Wbuf.t -> unit) ->
  unit

(** [encode_frame_into w ...] appends the frame to [w] itself (at its
    current position, no intermediate copy) — the zero-copy variant the
    binary sink uses internally, exposed for streaming encoders. *)
val encode_frame_into :
  Wbuf.t ->
  seq:int ->
  time_ms:float ->
  node:string ->
  dir:string ->
  emit:(Wbuf.t -> unit) ->
  unit

(** One decoded binary frame; [payload] is raw bytes. *)
type frame = {
  seq : int;
  time_ms : float;
  node : string;
  dir : string;
  payload : string;
}

type decoded = {
  version : int;
  frames : frame list;
  torn_bytes : int;
      (** Length of an incomplete trailing frame that was discarded
          (longest-valid-prefix, as for a torn WAL tail); [0] when the
          file ends on a frame boundary. *)
}

(** Decode a whole binary journal (header plus frames).  A truncated
    final frame is tolerated and reported via [torn_bytes]; a {e
    complete} frame whose checksum does not match its body is an error
    naming the frame and the seq it was expected to carry. *)
val decode_binary : string -> (decoded, string) result
