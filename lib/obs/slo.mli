(** Declarative SLO rules and the alert vocabulary of the Watchtower
    health monitor ({!Monitor}).

    This module is pure data: the rule thresholds an operator declares,
    the alert record the engine produces, and the two canonical renderings
    of an alert transition — a human-readable console line and a
    structured JSONL record (the [--alerts-out] sink).  The streaming
    evaluation lives in {!Monitor}; the journal-to-event decoding lives
    above this library (in [Cloudtx_core.Health]), keeping this module
    free of protocol dependencies. *)

type severity = Info | Warning | Critical

val severity_name : severity -> string

(** Alert-log format version; bump on any record-shape change. *)
val format_version : int

(** Thresholds for the built-in rules.  A rule whose threshold is
    [infinity] / [max_int] never fires.

    - [stuck_ms] — a transaction whose TM has taken no machine step for
      more than this many simulated ms, while unfinished, is stuck.
    - [staleness_versions] — a server's policy replica lagging the
      observed master version by {e more than} this many versions fires.
    - [staleness_ms] — any nonzero replica lag persisting longer than
      this many simulated ms fires (the timed-consistency arm).
    - [abort_window] / [abort_rate] — over the last [abort_window]
      finished transactions (once the window is full), an abort fraction
      at or above [abort_rate] fires.
    - [livelock_kills] — the same logical transaction (restart suffixes
      ["-r<N>"] stripped) dying as a wait-die victim this many consecutive
      times fires.
    - [flap_window] / [flap_transitions] — a server whose circuit breaker
      changed state at least [flap_transitions] times within the last
      [flap_window] simulated ms is flapping (oscillating between trip
      and probe instead of holding a verdict).
    - [reject_window] / [reject_count] — at least [reject_count]
      admission rejections (bounded in-flight or open-breaker fail-fasts)
      within the last [reject_window] simulated ms is an admission
      storm. *)
type rules = {
  stuck_ms : float;
  staleness_versions : int;
  staleness_ms : float;
  abort_window : int;
  abort_rate : float;
  livelock_kills : int;
  flap_window : float;
  flap_transitions : int;
  reject_window : float;
  reject_count : int;
}

(** [stuck_ms = 1000.]; [staleness_versions = 3]; [staleness_ms = infinity];
    [abort_window = 20]; [abort_rate = 0.5]; [livelock_kills = 3];
    [flap_window = 1000.]; [flap_transitions = 4]; [reject_window = 1000.];
    [reject_count = 10]. *)
val default : rules

(** One alert through its firing/resolved lifecycle.  [subject] names
    what is unhealthy (a transaction id, a ["server/domain"] pair, or
    ["cluster"]); [first_seq]/[last_seq] delimit the journal evidence;
    [detail] is the human-readable cause as of the latest transition. *)
type alert = {
  id : int;
  rule : string;
  severity : severity;
  subject : string;
  node : string;
  first_seq : int;
  mutable last_seq : int;
  fired_at : float;
  mutable detail : string;
  mutable resolved_at : float option;
}

val is_open : alert -> bool

(** [console_line transition alert] — e.g.
    ["ALERT stuck_txn critical txn t1 (tm-t1) seq 12..80 at 5.0ms: ..."]. *)
val console_line : [ `Fire | `Resolve ] -> alert -> string

(** [log_line transition alert] — one JSONL alert record:
    [{"event":"fire"|"resolve","rule":...,"severity":...,"subject":...,
      "node":...,"first_seq":N,"last_seq":N,"time_ms":T,"detail":...}]. *)
val log_line : [ `Fire | `Resolve ] -> alert -> string

(** Header line for an alert log: [{"alerts":"cloudtx","version":V}]. *)
val log_header : string
