(** Latency histogram with a selectable storage backend.

    [Exact] (the default) keeps log2 buckets for cheap shape summaries
    plus the exact sample store ({!Cloudtx_metrics.Sample_set}) for
    precise percentiles — affordable at simulation scale, O(n) memory.
    [Sketch] drops the raw samples and keeps a bounded-memory log-linear
    {!Sketch} instead: percentiles carry the sketch's documented
    relative-error bound ({!Sketch.error_bound}) but memory stays
    O(bins) no matter how many values are recorded — the backend for
    big load-engine runs. *)

type t

type backend = Exact | Sketch

val create : ?backend:backend -> unit -> t
val backend : t -> backend
val observe : t -> float -> unit
val count : t -> int

(** Exact running sum of every observation (tracked in both backends,
    not reconstructed from the buckets). *)
val sum : t -> float

val mean : t -> float
val min : t -> float
val max : t -> float

(** Percentile over the observations: exact in [Exact] mode, within
    {!Sketch.error_bound} (relative) in [Sketch] mode.  Both backends
    use the same rank convention ([r = p/100*(n-1)], interpolated).
    Raises [Invalid_argument] when empty or [p] outside [0, 100]. *)
val percentile : t -> float -> float

(** Non-empty buckets as [(upper_bound, count)], ascending — log2 buckets
    in [Exact] mode, the finer sketch bins in [Sketch] mode (both render
    directly as cumulative Prometheus [_bucket] series).  Non-positive
    values land in the lowest bucket. *)
val buckets : t -> (float * int) list

(** The underlying exact sample store ([Exact] backend only). *)
val samples : t -> Cloudtx_metrics.Sample_set.t option

(** The underlying sketch ([Sketch] backend only). *)
val sketch : t -> Sketch.t option

(** Lower-bound estimate of words retained by the backend — grows with
    the observation count in [Exact] mode, stays O(bins) in [Sketch]
    mode (the bench's bounded-memory assertion). *)
val retained_words : t -> int
