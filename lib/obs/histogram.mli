(** Latency histogram: log2 buckets for cheap shape summaries plus the
    exact sample store ({!Cloudtx_metrics.Sample_set}) for precise
    percentiles — simulation scale makes keeping every observation
    affordable, so percentiles are exact rather than bucket-interpolated. *)

type t

val create : unit -> t
val observe : t -> float -> unit
val count : t -> int

(** Exact running sum of every observation (not reconstructed from the
    buckets, which would be lossy for log-bucketed data). *)
val sum : t -> float

val mean : t -> float
val min : t -> float
val max : t -> float

(** Exact percentile over every observation; raises [Invalid_argument]
    when empty or [p] outside [0, 100]. *)
val percentile : t -> float -> float

(** Non-empty log2 buckets as [(upper_bound, count)], ascending.  A value
    [v] lands in the bucket with the smallest upper bound [2^k >= v];
    non-positive values land in the lowest bucket. *)
val buckets : t -> (float * int) list

(** The underlying exact sample store. *)
val samples : t -> Cloudtx_metrics.Sample_set.t
