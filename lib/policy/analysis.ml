type probe = {
  subject : string;
  action : string;
  item : string;
  facts : Rule.fact list;
}

let probe ~subject ~action ~item ~facts = { subject; action; item; facts }

let probe_space ~subjects ~actions ~items ~facts_for =
  List.concat_map
    (fun subject ->
      let facts = facts_for subject in
      List.concat_map
        (fun action ->
          List.map (fun item -> { subject; action; item; facts }) items)
        actions)
    subjects

type verdict =
  | Equivalent
  | Tightened of probe list
  | Relaxed of probe list
  | Mixed of { lost : probe list; gained : probe list }

let verdict_name = function
  | Equivalent -> "equivalent"
  | Tightened _ -> "tightened"
  | Relaxed _ -> "relaxed"
  | Mixed _ -> "mixed"

(* Mirror the request facts Proof.evaluate injects, so probing predicts
   exactly what a server-side evaluation would decide. *)
let decide policy p =
  let facts =
    Rule.fact "req_subject" [ p.subject ]
    :: Rule.fact "req_action" [ p.action ]
    :: Rule.fact "req_item" [ p.item ]
    :: p.facts
  in
  Policy.permits policy ~facts ~subject:p.subject ~action:p.action ~item:p.item

let compare_policies ~probes old_p new_p =
  let lost = ref [] and gained = ref [] in
  List.iter
    (fun p ->
      match (decide old_p p, decide new_p p) with
      | true, false -> lost := p :: !lost
      | false, true -> gained := p :: !gained
      | true, true | false, false -> ())
    probes;
  match (List.rev !lost, List.rev !gained) with
  | [], [] -> Equivalent
  | lost, [] -> Tightened lost
  | [], gained -> Relaxed gained
  | lost, gained -> Mixed { lost; gained }

let pp_probe ppf p =
  Format.fprintf ppf "%s %s %s" p.subject p.action p.item
