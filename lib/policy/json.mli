(** Minimal JSON, for the policy/credential wire format.

    Self-contained (the sealed environment carries no JSON package):
    a value type, a renderer and a recursive-descent parser sufficient
    for the codec's needs — objects, arrays, strings with escapes,
    integers, booleans and null. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact rendering (no insignificant whitespace). *)
val to_string : t -> string

(** [parse s] parses exactly one JSON value spanning the whole input.
    Returns [Error description] on malformed input. *)
val parse : string -> (t, string) result

(** {1 Accessors} — all return [Error] with a path-aware message. *)

val member : string -> t -> (t, string) result
val to_str : t -> (string, string) result
val to_int : t -> (int, string) result
val to_float : t -> (float, string) result
val to_bool : t -> (bool, string) result
val to_list : t -> (t list, string) result

(** Monadic bind over [result], for decoder pipelines. *)
val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
