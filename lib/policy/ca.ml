type t = {
  name : string;
  issued : (Credential.id, float) Hashtbl.t; (* id -> issue time *)
  revoked : (Credential.id, float) Hashtbl.t; (* id -> effective time *)
}

let create name = { name; issued = Hashtbl.create 16; revoked = Hashtbl.create 8 }
let name t = t.name

let issue t ~id ~subject ~facts ~now ~ttl =
  let cred =
    Credential.make ~id ~subject ~issuer:t.name ~kind:Credential.Attribute
      ~facts ~issued_at:now ~expires_at:(now +. ttl)
  in
  Hashtbl.replace t.issued id now;
  cred

let revoke t id ~at =
  if not (Hashtbl.mem t.issued id) then
    invalid_arg (Printf.sprintf "Ca.revoke: %s never issued %s" t.name id);
  match Hashtbl.find_opt t.revoked id with
  | Some earlier when earlier <= at -> ()
  | Some _ | None -> Hashtbl.replace t.revoked id at

type status = Good | Revoked of float | Unknown

let status t id ~at =
  if not (Hashtbl.mem t.issued id) then Unknown
  else begin
    match Hashtbl.find_opt t.revoked id with
    | Some when_ when when_ <= at -> Revoked when_
    | Some _ | None -> Good
  end

let semantically_valid t (cred : Credential.t) ~at =
  (* Revocations are permanent, so "revoked at some t' in [ti, t]" reduces
     to the status at [t] itself. *)
  match status t cred.Credential.id ~at with
  | Good -> true
  | Revoked _ | Unknown -> false

let issued_count t = Hashtbl.length t.issued
