type request = { subject : string; action : string; items : string list }

type env = {
  find_ca : string -> Ca.t option;
  trusted_server : string -> bool;
  context : unit -> Rule.fact list;
}

type failure =
  | Syntactic of Credential.id * Credential.syntactic_failure
  | Revoked of Credential.id
  | Untrusted_issuer of Credential.id
  | Denied of string

type t = {
  query_id : string;
  server : string;
  domain : string;
  policy_version : Policy.version;
  evaluated_at : float;
  credential_ids : Credential.id list;
  request : request;
  result : bool;
  failures : failure list;
}

(* Validate one credential; on success return the facts it contributes. *)
let vet env ~at (cred : Credential.t) : (Rule.fact list, failure) result =
  match Credential.syntactically_valid cred ~at with
  | Error why -> Error (Syntactic (cred.Credential.id, why))
  | Ok () -> (
    match (env.find_ca cred.Credential.issuer, cred.Credential.kind) with
    | Some ca, _ ->
      if Ca.semantically_valid ca cred ~at then Ok cred.Credential.facts
      else Error (Revoked cred.Credential.id)
    | None, Credential.Access { action; item } ->
      if env.trusted_server cred.Credential.issuer then
        Ok
          (Policy.capability_fact ~subject:cred.Credential.subject ~action
             ~item
          :: cred.Credential.facts)
      else Error (Untrusted_issuer cred.Credential.id)
    | None, Credential.Attribute -> Error (Untrusted_issuer cred.Credential.id))

let evaluate ?cache ~query_id ~server ~policy ~creds ~env ~at request =
  let vetted = List.map (fun cred -> (cred, vet env ~at cred)) creds in
  let cred_failures =
    List.filter_map
      (fun (_, r) -> match r with Error f -> Some f | Ok _ -> None)
      vetted
  in
  (* Facts describing the request itself, so range-restricted rules can
     bind their head variables: permit(S,A,I) :- role(S, clerk),
     req_action(A), req_item(I). *)
  let request_facts =
    Rule.fact "req_subject" [ request.subject ]
    :: Rule.fact "req_action" [ request.action ]
    :: List.map (fun item -> Rule.fact "req_item" [ item ]) request.items
  in
  let facts =
    request_facts
    @ env.context ()
    @ List.concat_map
        (fun (_, r) -> match r with Ok facts -> facts | Error _ -> [])
        vetted
  in
  let saturate_and_check () =
    Policy.permits_all policy ~facts ~subject:request.subject
      ~action:request.action ~items:request.items
  in
  let denied =
    match cache with
    | None -> saturate_and_check ()
    | Some table ->
      (* The key covers everything the inference result depends on:
         policy identity+version and the full fact base (which embeds the
         request and the surviving credentials' claims). *)
      let key =
        String.concat "|"
          (policy.Policy.domain
           :: string_of_int policy.Policy.version
           :: string_of_bool policy.Policy.accept_capabilities
           :: List.sort String.compare (List.map Rule.atom_to_string facts))
      in
      (match Hashtbl.find_opt table key with
      | Some denied -> denied
      | None ->
        let denied = saturate_and_check () in
        Hashtbl.replace table key denied;
        denied)
  in
  let failures = cred_failures @ List.map (fun item -> Denied item) denied in
  (* The proof is valid only when every credential passed and every item is
     permitted: a transaction built on a partly-invalid credential set must
     not count as trusted. *)
  let result = failures = [] in
  {
    query_id;
    server;
    domain = policy.Policy.domain;
    policy_version = policy.Policy.version;
    evaluated_at = at;
    credential_ids = List.map (fun c -> c.Credential.id) creds;
    request;
    result;
    failures;
  }

let pp_failure ppf = function
  | Syntactic (id, why) ->
    Format.fprintf ppf "credential %s %a" id Credential.pp_syntactic_failure why
  | Revoked id -> Format.fprintf ppf "credential %s revoked" id
  | Untrusted_issuer id -> Format.fprintf ppf "credential %s: untrusted issuer" id
  | Denied item -> Format.fprintf ppf "access to %s denied by policy" item

let pp ppf t =
  Format.fprintf ppf "proof[%s@%s %s v%d t=%g %s]" t.query_id t.server t.domain
    t.policy_version t.evaluated_at
    (if t.result then "TRUE" else "FALSE")
