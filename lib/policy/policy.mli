(** Versioned authorization policies.

    Per the paper's model, a policy [P^si(D)] belongs to an administrative
    domain [A], carries a version number [v] in [N], and consists of
    inference rules.  Access for [(subject, action, item)] is granted when
    the rules derive the goal atom [permit(subject, action, item)] from the
    presented credential facts.

    Server-issued access credentials ("capabilities", like Bob's read
    credential) enter the derivation as [capability(subject, action, item)]
    facts; a policy built with [accept_capabilities:true] (the default)
    includes the implicit rule [permit(S,A,I) :- capability(S,A,I)]. *)

type version = int

type t = private {
  domain : string;  (** Administrative domain A. *)
  version : version;
  rules : Rule.t list;
  accept_capabilities : bool;
}

(** [create ~domain rules] is version 1 of the domain's policy. *)
val create : ?accept_capabilities:bool -> domain:string -> Rule.t list -> t

(** [amend t rules] is the next version with a replaced rule set. *)
val amend : ?accept_capabilities:bool -> t -> Rule.t list -> t

(** [of_wire] reconstructs a policy received off the wire at its original
    version number. *)
val of_wire :
  domain:string -> version:version -> accept_capabilities:bool -> Rule.t list -> t

(** The goal atom [permit(subject, action, item)]. *)
val goal : subject:string -> action:string -> item:string -> Rule.atom

(** The fact contributed by a server-issued access credential. *)
val capability_fact : subject:string -> action:string -> item:string -> Rule.fact

(** Effective rule set: [rules] plus the capability rule when enabled. *)
val effective_rules : t -> Rule.t list

(** [permits t ~facts ~subject ~action ~item] — single saturation, single
    goal. *)
val permits :
  t -> facts:Rule.fact list -> subject:string -> action:string -> item:string -> bool

(** [permits_all t ~facts ~subject ~action ~items] checks every item
    against one saturation; returns the items denied (empty = granted). *)
val permits_all :
  t ->
  facts:Rule.fact list ->
  subject:string ->
  action:string ->
  items:string list ->
  string list

val pp : Format.formatter -> t -> unit
