type t = {
  domain : string;
  mutable latest : Policy.t;
  history : (Policy.version, Policy.t) Hashtbl.t;
}

let create ?accept_capabilities ~domain rules =
  let p = Policy.create ?accept_capabilities ~domain rules in
  let history = Hashtbl.create 8 in
  Hashtbl.replace history p.Policy.version p;
  { domain; latest = p; history }

let domain t = t.domain
let latest t = t.latest
let latest_version t = t.latest.Policy.version

let publish ?accept_capabilities t rules =
  let p = Policy.amend ?accept_capabilities t.latest rules in
  t.latest <- p;
  Hashtbl.replace t.history p.Policy.version p;
  p

let get t v = Hashtbl.find_opt t.history v
let history_length t = Hashtbl.length t.history
