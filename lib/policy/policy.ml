type version = int

type t = {
  domain : string;
  version : version;
  rules : Rule.t list;
  accept_capabilities : bool;
}

let create ?(accept_capabilities = true) ~domain rules =
  { domain; version = 1; rules; accept_capabilities }

let of_wire ~domain ~version ~accept_capabilities rules =
  if version < 1 then invalid_arg "Policy.of_wire: version must be >= 1";
  { domain; version; rules; accept_capabilities }

let amend ?accept_capabilities t rules =
  let accept_capabilities =
    match accept_capabilities with
    | Some flag -> flag
    | None -> t.accept_capabilities
  in
  { t with version = t.version + 1; rules; accept_capabilities }

let goal ~subject ~action ~item =
  Rule.atom "permit" [ Rule.c subject; Rule.c action; Rule.c item ]

let capability_fact ~subject ~action ~item =
  Rule.fact "capability" [ subject; action; item ]

let capability_rule =
  Rule.rule
    (Rule.atom "permit" [ Rule.v "s"; Rule.v "a"; Rule.v "i" ])
    [ Rule.atom "capability" [ Rule.v "s"; Rule.v "a"; Rule.v "i" ] ]

let effective_rules t =
  if t.accept_capabilities then capability_rule :: t.rules else t.rules

let permits t ~facts ~subject ~action ~item =
  Infer.satisfies ~rules:(effective_rules t) ~facts (goal ~subject ~action ~item)

let permits_all t ~facts ~subject ~action ~items =
  let db = Infer.saturate ~rules:(effective_rules t) ~facts in
  List.filter (fun item -> not (Infer.holds db (goal ~subject ~action ~item))) items

let pp ppf t =
  Format.fprintf ppf "@[<v>policy %s v%d (%d rules%s)@]" t.domain t.version
    (List.length t.rules)
    (if t.accept_capabilities then ", capabilities accepted" else "")
