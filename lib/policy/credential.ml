type id = string

type kind =
  | Attribute
  | Access of { action : string; item : string }

type t = {
  id : id;
  subject : string;
  issuer : string;
  kind : kind;
  facts : Rule.fact list;
  issued_at : float;
  expires_at : float;
  signature : string;
}

let payload ~id ~subject ~issuer ~kind ~facts ~issued_at ~expires_at =
  let kind_tag =
    match kind with
    | Attribute -> "attr"
    | Access { action; item } -> Printf.sprintf "access:%s:%s" action item
  in
  let fact_tags = List.map Rule.atom_to_string facts in
  String.concat "|"
    (id :: subject :: issuer :: kind_tag
     :: string_of_float issued_at :: string_of_float expires_at :: fact_tags)

(* Simulated signature: issuer-keyed digest of the payload. *)
let sign ~issuer body = Digest.to_hex (Digest.string (issuer ^ "##" ^ body))

let make ~id ~subject ~issuer ~kind ~facts ~issued_at ~expires_at =
  if expires_at <= issued_at then
    invalid_arg "Credential.make: expires_at must follow issued_at";
  List.iter
    (fun f ->
      if not (Rule.is_ground f) then
        invalid_arg "Credential.make: facts must be ground")
    facts;
  let body = payload ~id ~subject ~issuer ~kind ~facts ~issued_at ~expires_at in
  { id; subject; issuer; kind; facts; issued_at; expires_at;
    signature = sign ~issuer body }

let forge t ~facts = { t with facts }

let of_wire ~id ~subject ~issuer ~kind ~facts ~issued_at ~expires_at ~signature =
  if expires_at <= issued_at then
    invalid_arg "Credential.of_wire: expires_at must follow issued_at";
  { id; subject; issuer; kind; facts; issued_at; expires_at; signature }

let signature_valid t =
  let body =
    payload ~id:t.id ~subject:t.subject ~issuer:t.issuer ~kind:t.kind
      ~facts:t.facts ~issued_at:t.issued_at ~expires_at:t.expires_at
  in
  String.equal t.signature (sign ~issuer:t.issuer body)

type syntactic_failure = Not_yet_valid | Expired | Bad_signature

let syntactically_valid t ~at =
  if not (signature_valid t) then Error Bad_signature
  else if at < t.issued_at then Error Not_yet_valid
  else if at >= t.expires_at then Error Expired
  else Ok ()

let pp ppf t =
  Format.fprintf ppf "credential %s: subject=%s issuer=%s [%g, %g)" t.id
    t.subject t.issuer t.issued_at t.expires_at

let pp_syntactic_failure ppf = function
  | Not_yet_valid -> Format.fprintf ppf "not yet valid"
  | Expired -> Format.fprintf ppf "expired"
  | Bad_signature -> Format.fprintf ppf "bad signature"
