(** Semantic comparison of policy versions.

    Version numbers order policies administratively, but the paper's
    trade-offs hinge on what an update {e means}: a refresh that grants
    exactly the same accesses only costs consistency machinery, while a
    tightening turns stale replicas into a security hole.  This module
    probes two policies over a space of concrete requests and classifies
    the update. *)

(** One concrete access request plus the facts (credential + context)
    available to the derivation. *)
type probe = {
  subject : string;
  action : string;
  item : string;
  facts : Rule.fact list;
}

val probe :
  subject:string -> action:string -> item:string -> facts:Rule.fact list -> probe

(** [probe_space ~subjects ~actions ~items ~facts_for] — the cartesian
    product, with per-subject facts. *)
val probe_space :
  subjects:string list ->
  actions:string list ->
  items:string list ->
  facts_for:(string -> Rule.fact list) ->
  probe list

type verdict =
  | Equivalent  (** Same decision on every probe. *)
  | Tightened of probe list  (** Some accesses lost, none gained. *)
  | Relaxed of probe list  (** Some accesses gained, none lost. *)
  | Mixed of { lost : probe list; gained : probe list }

val verdict_name : verdict -> string

(** [compare_policies ~probes old_p new_p] evaluates every probe under
    both policies.  (Soundness is relative to the probe space: requests
    outside it are not examined.) *)
val compare_policies : probes:probe list -> Policy.t -> Policy.t -> verdict

val pp_probe : Format.formatter -> probe -> unit
