(** Forward-chaining inference over {!Rule} programs.

    [saturate] computes the least fixpoint of a rule set over a base of
    facts; [satisfies] answers the satisfiability question at the heart of a
    proof of authorization: can the policy's rules derive the requested
    permission from the presented credentials?

    The engine is naive bottom-up evaluation, quadratic in the number of
    derivable facts — ample for access-control policies, whose rule sets are
    small. *)

(** Derived fact database. *)
type db

(** [saturate ~rules ~facts] derives everything derivable. Raises
    [Invalid_argument] if any base fact is non-ground. *)
val saturate : rules:Rule.t list -> facts:Rule.fact list -> db

(** All facts (base and derived) in the database. *)
val facts : db -> Rule.fact list

val size : db -> int

(** [holds db atom] — is this ground atom in the database? Raises
    [Invalid_argument] on a non-ground query. *)
val holds : db -> Rule.atom -> bool

(** [query db pattern] is every binding of the pattern's variables that
    makes it hold, as association lists from variable name to constant. *)
val query : db -> Rule.atom -> (string * string) list list

(** [satisfies ~rules ~facts goal] saturates and checks the (ground)
    goal. *)
val satisfies : rules:Rule.t list -> facts:Rule.fact list -> Rule.atom -> bool
