type t = (string, Policy.t) Hashtbl.t

let create () : t = Hashtbl.create 8

let install t (p : Policy.t) =
  match Hashtbl.find_opt t p.Policy.domain with
  | Some held when held.Policy.version >= p.Policy.version -> `Stale
  | Some _ | None ->
    Hashtbl.replace t p.Policy.domain p;
    `Installed

let get t ~domain = Hashtbl.find_opt t domain
let version t ~domain = Option.map (fun p -> p.Policy.version) (get t ~domain)

let domains t =
  Hashtbl.fold (fun d _ acc -> d :: acc) t [] |> List.sort String.compare
