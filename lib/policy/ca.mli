(** Certificate authorities with an online revocation-status service.

    The paper assumes "each CA offers an online method that allows any
    server to check the current status of a particular credential" (an
    OCSP-style responder, RFC 2560).  A [Ca.t] issues credentials, records
    revocations with their effective time, and answers status queries.

    Semantic validity (paper, Section III-A): a credential issued at [ti]
    is semantically valid at time [t] if the online check shows it was not
    revoked at any [t'] with [ti <= t' <= t]. *)

type t

val create : string -> t
val name : t -> string

(** [issue t ~id ~subject ~facts ~now ~ttl] issues an attribute credential
    valid for [ttl] time units from [now]. *)
val issue :
  t ->
  id:Credential.id ->
  subject:string ->
  facts:Rule.fact list ->
  now:float ->
  ttl:float ->
  Credential.t

(** [revoke t id ~at] marks the credential revoked effective [at]. Revoking
    an unknown id raises [Invalid_argument]; revoking twice keeps the
    earlier time. *)
val revoke : t -> Credential.id -> at:float -> unit

type status =
  | Good
  | Revoked of float  (** Effective revocation time. *)
  | Unknown  (** Never issued by this CA. *)

(** The online status check, evaluated at query time [at]: a revocation
    with effective time after [at] does not show up yet. *)
val status : t -> Credential.id -> at:float -> status

(** [semantically_valid t cred ~at] applies the paper's definition over
    this CA's revocation records. [Unknown] credentials are invalid. *)
val semantically_valid : t -> Credential.t -> at:float -> bool

(** Number of credentials ever issued. *)
val issued_count : t -> int
