(** Per-server policy replica.

    Each cloud server holds its own copy of the policies of the domains
    whose data it serves.  Under the eventual-consistency model, updates
    reach different servers at different times, so replicas can lag the
    {!Admin} master — exactly the staleness the paper's schemes defend
    against.  [install] is monotone: an older version never overwrites a
    newer one (last-writer-wins on version numbers). *)

type t

val create : unit -> t

(** [install t p] applies the update unless the replica already holds the
    same or a newer version of that domain. *)
val install : t -> Policy.t -> [ `Installed | `Stale ]

val get : t -> domain:string -> Policy.t option

(** Version held for the domain; [None] when the domain is unknown. *)
val version : t -> domain:string -> Policy.version option

val domains : t -> string list
