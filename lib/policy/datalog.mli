(** Concrete syntax for the policy language.

    Administrators author policies as Datalog text; this module parses it
    into {!Rule} values (and {!Rule.to_string} prints the same syntax
    back).  Grammar, whitespace-insensitive, comments with [%] to end of
    line:

    {v
    program  ::= rule*
    rule     ::= atom "."                      % fact
               | atom ":-" literal-list "."
    literal  ::= atom | "not" atom
    atom     ::= ident "(" term-list ")"
    term     ::= IDENT                          % variable if capitalized
               | ident                          % constant otherwise
               | "\"" chars "\""                % quoted constant
    v}

    Identifiers match [[A-Za-z_][A-Za-z0-9_-]*]; a leading uppercase
    letter makes a term a variable (printed the same way), anything else
    is a constant.  Quoted constants allow arbitrary characters.

    Example:

    {v
    % CompuMe, version 2
    permit(S, A, I) :- role(S, sales_rep), assigned(S, R),
                       region_of(I, R), located(S, R),
                       not suspended(S).
    region_of(customer-recs, east).
    v} *)

(** [parse_program text] parses zero or more rules.  Rule-level
    validation ({!Rule.rule_literals} safety) applies; errors carry a
    line/column position. *)
val parse_program : string -> (Rule.t list, string) result

(** [parse_rule text] parses exactly one rule. *)
val parse_rule : string -> (Rule.t, string) result

(** [print_program rules] renders parseable text, one rule per line. *)
val print_program : Rule.t list -> string
