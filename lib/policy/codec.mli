(** Wire format for policies and credentials.

    Real deployments ship policy versions between the administrator, the
    master server and replicas, and users present credentials obtained
    from CAs — both travel as text.  This codec defines a JSON encoding
    with exact round-tripping:

    - terms: [{"v": name}] for variables, [{"c": value}] for constants;
    - atoms: [{"pred": p, "args": [term...]}];
    - rules: [{"head": atom, "body": [atom...]}];
    - policies: domain, version, capability flag, rules;
    - credentials: all fields including the {e transported} signature, so
      tampering in transit is detected by {!Credential.signature_valid}
      exactly as tampering at rest would be.

    Decoders validate structurally (range restriction via {!Rule.rule},
    interval via {!Credential.of_wire}) and return [Error] with a
    human-readable reason on malformed input. *)

val rule_to_json : Rule.t -> Json.t
val rule_of_json : Json.t -> (Rule.t, string) result

(** JSON-value level (for embedding in larger documents, e.g. the protocol
    flight-recorder journal). *)

val policy_to_json : Policy.t -> Json.t
val policy_of_json : Json.t -> (Policy.t, string) result
val credential_to_json : Credential.t -> Json.t
val credential_of_json : Json.t -> (Credential.t, string) result

val policy_to_string : Policy.t -> string
val policy_of_string : string -> (Policy.t, string) result

val credential_to_string : Credential.t -> string
val credential_of_string : string -> (Credential.t, string) result

(** Shared decoder helper: fail on the first [Error]. *)
val map_result : ('a -> ('b, 'e) result) -> 'a list -> ('b list, 'e) result
