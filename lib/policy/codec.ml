open Json

let term_to_json = function
  | Rule.Var x -> Obj [ ("v", String x) ]
  | Rule.Const c -> Obj [ ("c", String c) ]

let term_of_json j =
  match j with
  | Obj [ ("v", String x) ] -> Ok (Rule.Var x)
  | Obj [ ("c", String c) ] -> Ok (Rule.Const c)
  | _ -> Error "term: expected {\"v\": name} or {\"c\": value}"

let atom_to_json (a : Rule.atom) =
  Obj
    [
      ("pred", String a.Rule.pred);
      ("args", List (List.map term_to_json a.Rule.args));
    ]

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let atom_of_json j =
  let* pred = Result.bind (member "pred" j) to_str in
  let* args = Result.bind (member "args" j) to_list in
  let* args = map_result term_of_json args in
  Ok (Rule.atom pred args)

let literal_to_json = function
  | Rule.Pos a -> atom_to_json a
  | Rule.Neg a -> Obj [ ("not", atom_to_json a) ]

let literal_of_json j =
  match member "not" j with
  | Ok inner ->
    let* a = atom_of_json inner in
    Ok (Rule.Neg a)
  | Error _ ->
    let* a = atom_of_json j in
    Ok (Rule.Pos a)

let rule_to_json (r : Rule.t) =
  Obj
    [
      ("head", atom_to_json r.Rule.head);
      ("body", List (List.map literal_to_json r.Rule.body));
    ]

let rule_of_json j =
  let* head = Result.bind (member "head" j) atom_of_json in
  let* body = Result.bind (member "body" j) to_list in
  let* body = map_result literal_of_json body in
  (* Re-validate range restriction and safety on the receiving side. *)
  try Ok (Rule.rule_literals head body) with Invalid_argument m -> Error m

(* ------------------------------------------------------------------ *)
(* Policies                                                            *)
(* ------------------------------------------------------------------ *)

let policy_to_json (p : Policy.t) =
  Obj
    [
      ("domain", String p.Policy.domain);
      ("version", Int p.Policy.version);
      ("accept_capabilities", Bool p.Policy.accept_capabilities);
      ("rules", List (List.map rule_to_json p.Policy.rules));
    ]

let policy_to_string p = to_string (policy_to_json p)

let policy_of_json j =
  let* domain = Result.bind (member "domain" j) to_str in
  let* version = Result.bind (member "version" j) to_int in
  let* accept_capabilities = Result.bind (member "accept_capabilities" j) to_bool in
  let* rules = Result.bind (member "rules" j) to_list in
  let* rules = map_result rule_of_json rules in
  try Ok (Policy.of_wire ~domain ~version ~accept_capabilities rules)
  with Invalid_argument m -> Error m

let policy_of_string s = Result.bind (parse s) policy_of_json

(* ------------------------------------------------------------------ *)
(* Credentials                                                         *)
(* ------------------------------------------------------------------ *)

let kind_to_json = function
  | Credential.Attribute -> Obj [ ("kind", String "attribute") ]
  | Credential.Access { action; item } ->
    Obj [ ("kind", String "access"); ("action", String action); ("item", String item) ]

let kind_of_json j =
  let* kind = Result.bind (member "kind" j) to_str in
  match kind with
  | "attribute" -> Ok Credential.Attribute
  | "access" ->
    let* action = Result.bind (member "action" j) to_str in
    let* item = Result.bind (member "item" j) to_str in
    Ok (Credential.Access { action; item })
  | other -> Error (Printf.sprintf "credential kind %S unknown" other)

let fact_of_json j =
  let* a = atom_of_json j in
  if Rule.is_ground a then Ok a else Error "credential fact must be ground"

let credential_to_json (c : Credential.t) =
  Obj
    [
      ("id", String c.Credential.id);
      ("subject", String c.Credential.subject);
      ("issuer", String c.Credential.issuer);
      ("kind", kind_to_json c.Credential.kind);
      ("facts", List (List.map atom_to_json c.Credential.facts));
      ("issued_at", Float c.Credential.issued_at);
      ("expires_at", Float c.Credential.expires_at);
      ("signature", String c.Credential.signature);
    ]

let credential_to_string c = to_string (credential_to_json c)

let credential_of_json j =
  let* id = Result.bind (member "id" j) to_str in
  let* subject = Result.bind (member "subject" j) to_str in
  let* issuer = Result.bind (member "issuer" j) to_str in
  let* kind = Result.bind (member "kind" j) kind_of_json in
  let* facts = Result.bind (member "facts" j) to_list in
  let* facts = map_result fact_of_json facts in
  let* issued_at = Result.bind (member "issued_at" j) to_float in
  let* expires_at = Result.bind (member "expires_at" j) to_float in
  let* signature = Result.bind (member "signature" j) to_str in
  try
    Ok
      (Credential.of_wire ~id ~subject ~issuer ~kind ~facts ~issued_at
         ~expires_at ~signature)
  with Invalid_argument m -> Error m

let credential_of_string s = Result.bind (parse s) credential_of_json
