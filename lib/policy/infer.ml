module Fact_set = Set.Make (struct
  type t = string * string list

  let compare = compare
end)

type db = Fact_set.t

let key_of_fact (a : Rule.fact) =
  let args =
    List.map
      (function
        | Rule.Const s -> s
        | Rule.Var x ->
          invalid_arg (Printf.sprintf "Infer: non-ground fact (variable %s)" x))
      a.Rule.args
  in
  (a.Rule.pred, args)

type binding = (string * string) list

let lookup env x = List.assoc_opt x env

(* Match one atom against one ground fact under an environment; return the
   extended environment on success. *)
let match_atom env (atom : Rule.atom) ((pred, args) : string * string list) :
    binding option =
  if (not (String.equal atom.Rule.pred pred))
     || List.length atom.Rule.args <> List.length args
  then None
  else begin
    let step env term value =
      match env with
      | None -> None
      | Some env -> (
        match term with
        | Rule.Const c -> if String.equal c value then Some env else None
        | Rule.Var x -> (
          match lookup env x with
          | Some bound -> if String.equal bound value then Some env else None
          | None -> Some ((x, value) :: env)))
    in
    List.fold_left2 step (Some env) atom.Rule.args args
  end

let instantiate env (atom : Rule.atom) =
  let subst = function
    | Rule.Const _ as t -> t
    | Rule.Var x -> (
      match lookup env x with
      | Some value -> Rule.Const value
      | None ->
        (* Safety checks in [Rule.rule_literals] guarantee head and
           negated atoms are fully bound here. *)
        assert false)
  in
  { atom with Rule.args = List.map subst atom.Rule.args }

(* All environments extending [env] that satisfy the positive atoms, then
   filtered by the negative ones (which safety guarantees are ground once
   the positives are bound). *)
let solve db env (r : Rule.t) =
  let rec positives env = function
    | [] -> [ env ]
    | atom :: rest ->
      Fact_set.fold
        (fun fact acc ->
          match match_atom env atom fact with
          | None -> acc
          | Some env' -> positives env' rest @ acc)
        db []
  in
  let envs = positives env (Rule.positive_body r) in
  List.filter
    (fun env ->
      List.for_all
        (fun neg -> not (Fact_set.mem (key_of_fact (instantiate env neg)) db))
        (Rule.negative_body r))
    envs

(* ------------------------------------------------------------------ *)
(* Stratification                                                      *)
(* ------------------------------------------------------------------ *)

(* stratum(head) >= stratum(positive dep); > stratum(negative dep).
   Iterate to fixpoint; a stratum exceeding the predicate count means a
   cycle through negation. *)
let stratify rules =
  let strata = Hashtbl.create 16 in
  let get p = Option.value ~default:0 (Hashtbl.find_opt strata p) in
  let n_preds =
    List.length
      (List.sort_uniq String.compare
         (List.concat_map
            (fun (r : Rule.t) ->
              r.Rule.head.Rule.pred
              :: List.map
                   (fun (a : Rule.atom) -> a.Rule.pred)
                   (Rule.positive_body r @ Rule.negative_body r))
            rules))
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r : Rule.t) ->
        let h = r.Rule.head.Rule.pred in
        let bump target =
          if get h < target then begin
            if target > n_preds then
              invalid_arg "Infer: rules are not stratifiable (negation cycle)";
            Hashtbl.replace strata h target;
            changed := true
          end
        in
        List.iter
          (fun (a : Rule.atom) -> bump (get a.Rule.pred))
          (Rule.positive_body r);
        List.iter
          (fun (a : Rule.atom) -> bump (get a.Rule.pred + 1))
          (Rule.negative_body r))
      rules
  done;
  (* Group rules by head stratum, ascending. *)
  let tagged =
    List.map (fun (r : Rule.t) -> (get r.Rule.head.Rule.pred, r)) rules
  in
  let max_stratum = List.fold_left (fun acc (s, _) -> max acc s) 0 tagged in
  List.init (max_stratum + 1) (fun s ->
      List.filter_map (fun (s', r) -> if s = s' then Some r else None) tagged)

let saturate ~rules ~facts =
  let db = ref Fact_set.empty in
  List.iter (fun f -> db := Fact_set.add (key_of_fact f) !db) facts;
  let run_stratum stratum_rules =
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (r : Rule.t) ->
          let envs = solve !db [] r in
          List.iter
            (fun env ->
              let derived = key_of_fact (instantiate env r.Rule.head) in
              if not (Fact_set.mem derived !db) then begin
                db := Fact_set.add derived !db;
                changed := true
              end)
            envs)
        stratum_rules
    done
  in
  List.iter run_stratum (stratify rules);
  !db

let facts db =
  Fact_set.fold (fun (pred, args) acc -> Rule.fact pred args :: acc) db []
  |> List.rev

let size db = Fact_set.cardinal db

let holds db atom =
  if not (Rule.is_ground atom) then
    invalid_arg "Infer.holds: query atom must be ground";
  Fact_set.mem (key_of_fact atom) db

let query db pattern =
  Fact_set.fold
    (fun fact acc ->
      match match_atom [] pattern fact with None -> acc | Some env -> env :: acc)
    db []

let satisfies ~rules ~facts goal = holds (saturate ~rules ~facts) goal
