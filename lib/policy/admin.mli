(** Policy administrator / master version authority for one domain.

    The paper's global-consistency protocols consult "some master server on
    the system which knows the latest policy version" — this module is that
    authority.  It owns the authoritative copy, bumps versions on
    [publish], and keeps the full history so replicas can fetch any version
    during 2PV Update rounds. *)

type t

(** [create ~domain rules] starts the domain at version 1. *)
val create : ?accept_capabilities:bool -> domain:string -> Rule.t list -> t

val domain : t -> string

(** The authoritative latest policy. *)
val latest : t -> Policy.t

val latest_version : t -> Policy.version

(** [publish t rules] installs and returns the next version. *)
val publish : ?accept_capabilities:bool -> t -> Rule.t list -> Policy.t

(** [get t v] retrieves a historical version. *)
val get : t -> Policy.version -> Policy.t option

(** Number of versions ever published (= latest version). *)
val history_length : t -> int
