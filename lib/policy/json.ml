type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string t =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
      (* Round-trippable float rendering. *)
      Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | String s -> escape buf s
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse input =
  let pos = ref 0 in
  let len = String.length input in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let advance () = incr pos in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "%s at offset %d" m !pos))) fmt
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail "expected '%c', found '%c'" c got
    | None -> fail "expected '%c', found end of input" c
  in
  let literal word value =
    if !pos + String.length word <= len
       && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > len then fail "truncated \\u escape";
          let hex = String.sub input !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (* Codec strings are byte-oriented; encode below 256 directly. *)
          if code < 256 then Buffer.add_char buf (Char.chr code)
          else begin
            Buffer.add_string buf (Printf.sprintf "\\u%s" hex)
          end;
          pos := !pos + 4;
          go ()
        | Some c -> fail "bad escape '\\%c'" c
        | None -> fail "unterminated escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (key, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail "unexpected character '%c'" c
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  with Bad m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> (
    match List.assoc_opt key fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" key))
  | _ -> Error (Printf.sprintf "expected object with field %S" key)

let to_str = function String s -> Ok s | _ -> Error "expected string"
let to_int = function Int n -> Ok n | _ -> Error "expected integer"

let to_float = function
  | Float f -> Ok f
  | Int n -> Ok (float_of_int n)
  | _ -> Error "expected number"

let to_bool = function Bool b -> Ok b | _ -> Error "expected boolean"
let to_list = function List items -> Ok items | _ -> Error "expected array"

let ( let* ) = Result.bind
