type term = Var of string | Const of string
type atom = { pred : string; args : term list }
type fact = atom
type literal = Pos of atom | Neg of atom
type t = { head : atom; body : literal list }

let v name = Var name
let c value = Const value
let atom pred args = { pred; args }

let is_ground a = List.for_all (function Const _ -> true | Var _ -> false) a.args

let fact pred args = { pred; args = List.map (fun s -> Const s) args }

let vars_of a =
  List.filter_map (function Var x -> Some x | Const _ -> None) a.args

let rule_literals head body =
  let positive_vars =
    List.concat_map (function Pos a -> vars_of a | Neg _ -> []) body
  in
  let check_bound what vars =
    match List.filter (fun x -> not (List.mem x positive_vars)) vars with
    | [] -> ()
    | x :: _ ->
      invalid_arg
        (Printf.sprintf "Rule.rule: %s variable %s not bound in body" what x)
  in
  check_bound "head" (vars_of head);
  List.iter
    (function Neg a -> check_bound "negated" (vars_of a) | Pos _ -> ())
    body;
  { head; body }

let rule head body = rule_literals head (List.map (fun a -> Pos a) body)

let positive_body t =
  List.filter_map (function Pos a -> Some a | Neg _ -> None) t.body

let negative_body t =
  List.filter_map (function Neg a -> Some a | Pos _ -> None) t.body

let term_equal a b =
  match (a, b) with
  | Var x, Var y -> String.equal x y
  | Const x, Const y -> String.equal x y
  | Var _, Const _ | Const _, Var _ -> false

let atom_equal a b =
  String.equal a.pred b.pred
  && List.length a.args = List.length b.args
  && List.for_all2 term_equal a.args b.args

(* Constants print bare when the Datalog parser would read them back as
   the same constant; otherwise quoted. *)
let const_needs_quoting s =
  let ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-'
  in
  String.length s = 0
  || (not (s.[0] >= 'a' && s.[0] <= 'z')) && s.[0] <> '_'
  || (not (String.for_all ident_char s))
  || String.equal s "not"

let pp_term ppf = function
  | Var x -> Format.fprintf ppf "%s" (String.capitalize_ascii x)
  | Const s ->
    if const_needs_quoting s then Format.fprintf ppf "\"%s\"" s
    else Format.fprintf ppf "%s" s

let pp_atom ppf a =
  Format.fprintf ppf "%s(%a)" a.pred
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_term)
    a.args

let pp_literal ppf = function
  | Pos a -> pp_atom ppf a
  | Neg a -> Format.fprintf ppf "not %a" pp_atom a

let pp ppf r =
  match r.body with
  | [] -> Format.fprintf ppf "%a." pp_atom r.head
  | body ->
    Format.fprintf ppf "%a :- %a." pp_atom r.head
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_literal)
      body

let atom_to_string a = Format.asprintf "%a" pp_atom a
let to_string r = Format.asprintf "%a" pp r
