(** Datalog-style inference rules, with stratified negation.

    The paper defines an authorization policy as "a set of inference rules
    that are encoded by policy makers to capture systems access control
    regulations" and grants access when the rules can be satisfied from the
    user's credentials.  We realize that with function-free Horn clauses
    extended with negation-as-failure: each rule derives a head atom from
    ground instances of its body literals, where a negated literal holds
    when the atom is {e not} derivable.

    Example — the CompuMe policy from the paper's Section II, with an
    exception list:
    {[
      permit(U, read, customers) :- role(U, sales_rep),
                                    assigned(U, R),
                                    located(U, R),
                                    not suspended(U).
    ]}

    Negation must be {e stratified} (no recursion through [not]); the
    engine checks this at saturation time ({!Infer.saturate}). *)

type term = Var of string | Const of string

type atom = { pred : string; args : term list }

(** A ground atom (no variables), i.e. a fact. *)
type fact = atom

(** A body literal: an atom to derive, or an atom that must not be
    derivable (negation as failure). *)
type literal = Pos of atom | Neg of atom

type t = { head : atom; body : literal list }

(** {1 Construction helpers} *)

val v : string -> term
val c : string -> term
val atom : string -> term list -> atom

(** [fact p args] is a ground atom; raises [Invalid_argument] if any
    argument is a variable. *)
val fact : string -> string list -> fact

(** [rule head body] — all-positive body. Checks range restriction (every
    head variable occurs in the body) and raises [Invalid_argument]
    otherwise. A rule with an empty body must be ground. *)
val rule : atom -> atom list -> t

(** [rule_literals head body] — general form.  Safety requires every
    variable of the head {e and of every negated literal} to occur in some
    positive literal; violations raise [Invalid_argument]. *)
val rule_literals : atom -> literal list -> t

(** Positive body atoms, in order. *)
val positive_body : t -> atom list

(** Negated body atoms, in order. *)
val negative_body : t -> atom list

val is_ground : atom -> bool

(** Structural equality on atoms. *)
val atom_equal : atom -> atom -> bool

val pp_atom : Format.formatter -> atom -> unit
val pp : Format.formatter -> t -> unit
val atom_to_string : atom -> string
val to_string : t -> string
