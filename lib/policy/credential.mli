(** Certified credentials (Section III-A of the paper).

    A credential carries attribute facts about its subject (e.g.
    [role(bob, sales_rep)]), is issued by a certificate authority or — for
    access credentials acting as capabilities — by a cloud server, and is
    valid in an interval [[alpha, omega)].  Signatures are simulated as a
    digest over the payload keyed by the issuer's name: enough to detect
    tampering in tests while exercising the same validation code path a real
    PKI would.

    Syntactic validity (paper, Section III-A, following Lee & Winslett):
    well-formed, correctly signed, [alpha] has passed and [omega] has not.
    Semantic validity — "not revoked between issue and use" — needs the
    issuer's online status service and lives in {!Ca.semantically_valid}. *)

type id = string

type kind =
  | Attribute  (** CA-issued statement of the subject's attributes. *)
  | Access of { action : string; item : string }
      (** Server-issued capability: the bearer passed a proof of
          authorization for [action] on [item] (like Bob's read credential
          in the paper's Figure 1). *)

type t = private {
  id : id;
  subject : string;
  issuer : string;
  kind : kind;
  facts : Rule.fact list;  (** Attribute claims contributed to proofs. *)
  issued_at : float;  (** alpha(c) *)
  expires_at : float;  (** omega(c) *)
  signature : string;
}

(** [make ~id ~subject ~issuer ~kind ~facts ~issued_at ~expires_at] builds
    and signs a credential.  Raises [Invalid_argument] if
    [expires_at <= issued_at] or any fact is non-ground. *)
val make :
  id:id ->
  subject:string ->
  issuer:string ->
  kind:kind ->
  facts:Rule.fact list ->
  issued_at:float ->
  expires_at:float ->
  t

(** A copy with a corrupted signature, for negative tests. *)
val forge : t -> facts:Rule.fact list -> t

(** [of_wire] reconstructs a credential received off the wire, keeping the
    transported signature instead of re-signing — verification stays with
    {!signature_valid}, so tampering in transit is still detected.  The
    same interval check as [make] applies. *)
val of_wire :
  id:id ->
  subject:string ->
  issuer:string ->
  kind:kind ->
  facts:Rule.fact list ->
  issued_at:float ->
  expires_at:float ->
  signature:string ->
  t

val signature_valid : t -> bool

type syntactic_failure =
  | Not_yet_valid  (** alpha(c) has not passed. *)
  | Expired  (** omega(c) has passed. *)
  | Bad_signature

(** [syntactically_valid t ~at] per the paper's four conditions. *)
val syntactically_valid : t -> at:float -> (unit, syntactic_failure) result

val pp : Format.formatter -> t -> unit
val pp_syntactic_failure : Format.formatter -> syntactic_failure -> unit
