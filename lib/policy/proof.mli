(** Proofs of authorization — f_si = <q_i, s_i, P^si(m(q_i)), t_i, C>.

    A proof records that server [s_i], holding version [v] of domain [A]'s
    policy, evaluated query [q_i]'s access request at time [t_i] against
    credential set [C], with outcome [result].  [evaluate] constructs a
    proof; re-running [evaluate] with the same request at a later time is
    the paper's [eval(f, t)] — the re-validation the Deferred / Punctual /
    Continuous schemes perform at commit or per query.

    Validity requires (paper, Section III-A):
    + every credential syntactically valid at [t] (format, signature,
      alpha passed, omega not passed);
    + every credential semantically valid at [t] (the issuing CA's online
      status check reports it unrevoked over [t_i, t]);
    + the policy's inference rules satisfiable from the credential facts
      for every data item the query touches.

    The evaluation injects request-describing facts —
    [req_subject(subject)], [req_action(action)] and one [req_item(i)]
    per touched item — so that range-restricted rules can bind their head
    variables, e.g.
    {[ permit(S, A, I) :- role(S, clerk), req_action(A), req_item(I). ]} *)

type request = {
  subject : string;
  action : string;  (** e.g. ["read"] or ["write"]. *)
  items : string list;  (** m(q): the data items the query touches. *)
}

(** How the evaluating server resolves credential issuers. *)
type env = {
  find_ca : string -> Ca.t option;
      (** Issuer name to CA, for semantic (revocation) checks. *)
  trusted_server : string -> bool;
      (** Accept access credentials issued by this cloud server? *)
  context : unit -> Rule.fact list;
      (** Environment facts available to every derivation (e.g. the
          requester's current location as attested by the session); read
          at evaluation time so they can change mid-transaction. *)
}

type failure =
  | Syntactic of Credential.id * Credential.syntactic_failure
  | Revoked of Credential.id
  | Untrusted_issuer of Credential.id
  | Denied of string  (** Rules unsatisfiable for this item. *)

type t = {
  query_id : string;
  server : string;
  domain : string;
  policy_version : Policy.version;
  evaluated_at : float;  (** t_i *)
  credential_ids : Credential.id list;
  request : request;
  result : bool;
  failures : failure list;  (** Empty iff [result]. *)
}

(** [evaluate ~query_id ~server ~policy ~creds ~env ~at request] runs the
    full three-step validation and returns the proof record.  Facts from
    invalid credentials are excluded from the derivation, and — because the
    paper's validity definition quantifies over every credential in [C] —
    any credential failure makes the whole proof FALSE even if the
    remaining credentials would satisfy the rules.

    [cache], when given, memoizes the {e inference} step (rule
    satisfiability) keyed by policy domain + version, request, and the
    exact credential/context fact base.  Credential validity — the
    time-dependent part of [eval(f, t)] — is always re-checked, so caching
    never changes a proof's truth value, only the work done: Continuous
    proofs of authorization re-derive the same conclusion up to u(u+1)/2
    times per transaction otherwise. *)
val evaluate :
  ?cache:(string, string list) Hashtbl.t ->
  query_id:string ->
  server:string ->
  policy:Policy.t ->
  creds:Credential.t list ->
  env:env ->
  at:float ->
  request ->
  t

val pp_failure : Format.formatter -> failure -> unit
val pp : Format.formatter -> t -> unit
