(* Tokenizer + recursive descent. Positions are (line, column), 1-based. *)

type token =
  | Ident of string
  | Quoted of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Turnstile
  | Not

type positioned = { tok : token; line : int; col : int }

exception Syntax of string

let fail line col fmt =
  Printf.ksprintf (fun m -> raise (Syntax (Printf.sprintf "%d:%d: %s" line col m))) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '-'

let tokenize text =
  let out = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let n = String.length text in
  let advance () =
    (if text.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  let push tok l c = out := { tok; line = l; col = c } :: !out in
  while !i < n do
    let c = text.[!i] in
    let l0 = !line and c0 = !col in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance ()
    else if c = '%' then
      while !i < n && text.[!i] <> '\n' do
        advance ()
      done
    else if c = '(' then (push Lparen l0 c0; advance ())
    else if c = ')' then (push Rparen l0 c0; advance ())
    else if c = ',' then (push Comma l0 c0; advance ())
    else if c = '.' then (push Dot l0 c0; advance ())
    else if c = ':' then begin
      advance ();
      if !i < n && text.[!i] = '-' then (push Turnstile l0 c0; advance ())
      else fail l0 c0 "expected ':-'"
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 8 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if text.[!i] = '"' then begin
          closed := true;
          advance ()
        end
        else begin
          Buffer.add_char buf text.[!i];
          advance ()
        end
      done;
      if not !closed then fail l0 c0 "unterminated quoted constant";
      push (Quoted (Buffer.contents buf)) l0 c0
    end
    else if is_ident_start c then begin
      let buf = Buffer.create 8 in
      while !i < n && is_ident_char text.[!i] do
        Buffer.add_char buf text.[!i];
        advance ()
      done;
      let word = Buffer.contents buf in
      if String.equal word "not" then push Not l0 c0
      else push (Ident word) l0 c0
    end
    else fail l0 c0 "unexpected character '%c'" c
  done;
  List.rev !out

(* A leading uppercase letter makes an identifier a variable; the Rule
   layer stores variable names lowercased so printing (which capitalizes)
   round-trips. *)
let term_of_ident word =
  if String.length word > 0 && word.[0] >= 'A' && word.[0] <= 'Z' then
    Rule.v (String.uncapitalize_ascii word)
  else Rule.c word

type stream = { mutable toks : positioned list }

let peek s = match s.toks with [] -> None | t :: _ -> Some t

let next s what =
  match s.toks with
  | [] -> raise (Syntax (Printf.sprintf "unexpected end of input, expected %s" what))
  | t :: rest ->
    s.toks <- rest;
    t

let expect s tok what =
  let t = next s what in
  if t.tok <> tok then fail t.line t.col "expected %s" what

let parse_atom s =
  let t = next s "a predicate name" in
  let pred =
    match t.tok with
    | Ident p -> p
    | _ -> fail t.line t.col "expected a predicate name"
  in
  expect s Lparen "'('";
  let rec args acc =
    let t = next s "a term" in
    let term =
      match t.tok with
      | Ident w -> term_of_ident w
      | Quoted q -> Rule.c q
      | _ -> fail t.line t.col "expected a term"
    in
    let t = next s "',' or ')'" in
    match t.tok with
    | Comma -> args (term :: acc)
    | Rparen -> List.rev (term :: acc)
    | _ -> fail t.line t.col "expected ',' or ')'"
  in
  Rule.atom pred (args [])

let parse_literal s =
  match peek s with
  | Some { tok = Not; _ } ->
    ignore (next s "'not'");
    Rule.Neg (parse_atom s)
  | _ -> Rule.Pos (parse_atom s)

let parse_one s =
  let head = parse_atom s in
  let t = next s "'.' or ':-'" in
  match t.tok with
  | Dot -> Rule.rule_literals head []
  | Turnstile ->
    let rec body acc =
      let lit = parse_literal s in
      let t = next s "',' or '.'" in
      match t.tok with
      | Comma -> body (lit :: acc)
      | Dot -> List.rev (lit :: acc)
      | _ -> fail t.line t.col "expected ',' or '.'"
    in
    Rule.rule_literals head (body [])
  | _ -> fail t.line t.col "expected '.' or ':-'"

let parse_program text =
  try
    let s = { toks = tokenize text } in
    let rec go acc =
      match peek s with None -> List.rev acc | Some _ -> go (parse_one s :: acc)
    in
    Ok (go [])
  with
  | Syntax m -> Error m
  | Invalid_argument m -> Error m

let parse_rule text =
  match parse_program text with
  | Ok [ r ] -> Ok r
  | Ok rules -> Error (Printf.sprintf "expected one rule, found %d" (List.length rules))
  | Error m -> Error m

let print_program rules = String.concat "\n" (List.map Rule.to_string rules) ^ "\n"
