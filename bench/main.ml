(* Reproduction harness: regenerates every table and figure of the paper's
   evaluation, plus the simulation study its conclusion announces.

     dune exec bench/main.exe            -- all paper sections + micro benches
     dune exec bench/main.exe -- table1  -- a single section
     dune exec bench/main.exe -- micro   -- Bechamel micro-benchmarks only

   Sections:
     table1   Table I    worst-case messages and proofs per scheme
     figure1  Figure 1   Bob's anomalous interaction
     figure2  Figure 2   component interaction (message sequence)
     figures  Figures 3-6 proof-evaluation timelines per scheme
     figure7  Figure 7   basic 2PC sequence and log complexity
     tradeoff Section VI-B  txn length vs policy-update interval
     logging  Section V/VI-A  forced-log counts, 2PC variants vs 2PVC
     ablations design knobs beyond the paper (read-only opt, master modes,
              OCSP pricing, gossip, master placement, MVCC snapshot reads,
              contention + wait-die aging)
     micro    Bechamel wall-clock micro-benchmarks *)

module Cluster = Cloudtx_core.Cluster
module Manager = Cloudtx_core.Manager
module Scheme = Cloudtx_core.Scheme
module Consistency = Cloudtx_core.Consistency
module Complexity = Cloudtx_core.Complexity
module Outcome = Cloudtx_core.Outcome
module Message = Cloudtx_core.Message
module Participant = Cloudtx_core.Participant
module Counter = Cloudtx_metrics.Counter
module Table = Cloudtx_metrics.Table
module Timeline = Cloudtx_metrics.Timeline
module Sample_set = Cloudtx_metrics.Sample_set
module Running_stats = Cloudtx_metrics.Running_stats
module Transport = Cloudtx_sim.Transport
module Trace = Cloudtx_sim.Trace
module Latency = Cloudtx_sim.Latency
module Splitmix = Cloudtx_sim.Splitmix
module Scenario = Cloudtx_workload.Scenario
module Generator = Cloudtx_workload.Generator
module Churn = Cloudtx_workload.Churn
module Experiment = Cloudtx_workload.Experiment
module Tpc = Cloudtx_txn.Tpc
module Tpc_run = Cloudtx_txn.Tpc_run
module Server = Cloudtx_store.Server
module Wal = Cloudtx_store.Wal
module Tracer = Cloudtx_obs.Tracer
module Registry = Cloudtx_obs.Registry
module Obs_export = Cloudtx_obs.Export
module Obs_json = Cloudtx_obs.Json
module Journal = Cloudtx_obs.Journal
module Wbuf = Cloudtx_obs.Wbuf
module Journal_io = Cloudtx_core.Journal_io
module Codec_bin = Cloudtx_protocol.Codec_bin
module Pcodec = Cloudtx_protocol.Codec
module Campaign = Cloudtx_chaos.Campaign
module Certify = Cloudtx_core.Certify
module Blame = Cloudtx_core.Blame
module Critical_path = Cloudtx_obs.Critical_path
module Obs_histogram = Cloudtx_obs.Histogram

(* Optional artifact destinations, set by command-line flags (parsed at
   the bottom of this file). *)
let obs_trace_out = ref None
let obs_metrics_json = ref None
let obs_journal_out = ref None

(* --json FILE: machine-readable per-cell results for the section(s) that
   support it (table1, tradeoff), so the perf trajectory is tracked across
   changes; CI uploads them as artifacts. *)
let json_out = ref None

(* --check BASELINE: regression gate.  After the section(s) run, the
   produced cells are compared field-by-field against the committed
   baseline JSON (BENCH_table1.json / BENCH_tradeoff.json) — latency
   fields excepted, since those are the trajectory being tracked, while
   counts (messages, proofs, commit ratios) are deterministic under the
   fixed seeds and must not drift silently.  Cells carrying analytic
   bounds are additionally checked against them (measured <= closed
   form). *)
let check_baseline = ref None
let produced_cells : string list ref = ref []

let write_json_file ~what objs =
  if !check_baseline <> None then produced_cells := !produced_cells @ objs;
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc "[\n  ";
      output_string oc (String.concat ",\n  " objs);
      output_string oc "\n]\n";
      close_out oc;
      Printf.printf "  wrote %s (%s, %d cells)\n" path what (List.length objs))
    !json_out

(* Latency is machine-independent here (simulated ms) but remains the
   tracked trajectory, not a gate. *)
let check_skip_fields =
  [
    "latency_ms"; "latency_ms_mean"; "latency_ms_p95"; "journals_per_sec";
    "edges_per_sec"; "jsonl_records_per_sec"; "bin_records_per_sec";
    "jsonl_mb_per_sec"; "bin_mb_per_sec"; "encode_speedup"; "decode_speedup";
    "jsonl_decode_records_per_sec"; "bin_decode_records_per_sec"; "wall_s";
    "sketch_ns_per_observe"; "exact_ns_per_observe"; "delay_ns_per_call";
  ]

module Pjson = Cloudtx_policy.Json

let cell_id fields i =
  let get k =
    match List.assoc_opt k fields with
    | Some (Pjson.String s) -> Some s
    | _ -> None
  in
  match (get "workload", get "scheme", get "level") with
  | None, Some s, Some l -> Printf.sprintf "cell %d (%s/%s)" i s l
  | Some w, Some s, Some l -> Printf.sprintf "cell %d (%s: %s/%s)" i w s l
  | _ -> Printf.sprintf "cell %d" i

let run_check path =
  let fail = ref 0 in
  let failf fmt =
    incr fail;
    Printf.ksprintf (fun m -> Printf.printf "  CHECK FAILED: %s\n" m) fmt
  in
  let produced =
    List.filter_map
      (fun s ->
        match Pjson.parse s with
        | Ok (Pjson.Obj fields) -> Some fields
        | Ok _ | Error _ ->
          failf "a produced cell is not a JSON object";
          None)
      !produced_cells
  in
  (* Closed forms: measured must sit at or below the analytic bound,
     baseline or not. *)
  List.iteri
    (fun i p ->
      let name = cell_id p (i + 1) in
      let int_field k =
        match List.assoc_opt k p with Some (Pjson.Int n) -> Some n | _ -> None
      in
      let num_field k =
        match List.assoc_opt k p with
        | Some (Pjson.Int n) -> Some (float_of_int n)
        | Some (Pjson.Float f) -> Some f
        | _ -> None
      in
      (match (int_field "measured_messages", int_field "analytic_messages") with
      | Some m, Some a when m > a ->
        failf "%s: measured messages %d exceed the closed form %d" name m a
      | _ -> ());
      (* Journal encoding: the measured binary/JSONL speedup is a
         trajectory field, but it must never fall below the committed
         floor. *)
      (match (num_field "encode_speedup", num_field "min_encode_speedup") with
      | Some s, Some m when s < m ->
        failf "%s: binary encode speedup %.1fx below the required %.0fx" name s m
      | _ -> ());
      match (int_field "measured_proofs", int_field "analytic_proofs") with
      | Some m, Some a when m > a ->
        failf "%s: measured proofs %d exceed the closed form %d" name m a
      | _ -> ())
    produced;
  let contents =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (match Pjson.parse contents with
  | Error m -> failf "%s: unparseable baseline: %s" path m
  | Ok (Pjson.List baseline) ->
    if List.length baseline <> List.length produced then
      failf "%s has %d cell(s), this run produced %d" path
        (List.length baseline) (List.length produced)
    else
      List.iteri
        (fun i (b, p) ->
          let name = cell_id p (i + 1) in
          match b with
          | Pjson.Obj bf ->
            List.iter
              (fun (k, bv) ->
                if not (List.mem k check_skip_fields) then
                  match List.assoc_opt k p with
                  | None -> failf "%s: field %s missing from this run" name k
                  | Some pv ->
                    if not (String.equal (Pjson.to_string bv) (Pjson.to_string pv))
                    then
                      failf "%s: %s diverged -- baseline %s, this run %s" name k
                        (Pjson.to_string bv) (Pjson.to_string pv))
              bf
          | _ -> failf "%s: baseline cell is not an object" name)
        (List.combine baseline produced)
  | Ok _ -> failf "%s: baseline is not a JSON array" path);
  if !fail = 0 then
    Printf.printf "  check: %d cell(s) match %s (latency fields excepted)\n"
      (List.length produced) path
  else begin
    Printf.printf "  check: %d failure(s) against %s\n" !fail path;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

module Table1 = Cloudtx_workload.Table1

let section_table1 () =
  let n = 4 and u = 4 in
  let rows = Table1.matrix_rows ~n ~u in
  Table.print
    ~title:
      (Printf.sprintf
         "Table I -- worst-case complexity, measured on the simulator (n=%d, u=%d)"
         n u)
    ~headers:
      [
        "scheme"; "level"; "staleness"; "msgs formula"; "analytic"; "measured";
        "proofs formula"; "analytic"; "measured";
      ]
    rows;
  print_endline
    "  note: under view consistency the paper's 2n+2nr message bound assumes all n";
  print_endline
    "  participants are re-polled in round 2; the participant that already holds";
  print_endline
    "  the freshest policy is not, so the measured value is the bound minus 2.";
  print_endline
    "  Master-version *requests* are not counted (the paper counts r retrievals);";
  print_endline "  every other protocol message is.";
  write_json_file ~what:"Table I"
    (List.concat_map
       (fun scheme ->
         List.map
           (fun level ->
             let staleness = Table1.worst_for scheme level in
             let m = Table1.run_case ~n_servers:n ~queries:u scheme level staleness in
             let o = m.Table1.outcome in
             let r = max 1 o.Outcome.commit_rounds in
             Obs_json.obj
               [
                 ("scheme", Obs_json.quote (Scheme.name scheme));
                 ("level", Obs_json.quote (Consistency.name level));
                 ("staleness", Obs_json.quote (Table1.staleness_name staleness));
                 ("n", string_of_int n);
                 ("u", string_of_int u);
                 ("r", string_of_int r);
                 ( "analytic_messages",
                   string_of_int (Complexity.messages scheme level ~n ~u ~r) );
                 ("measured_messages", string_of_int m.Table1.messages);
                 ( "analytic_proofs",
                   string_of_int (Complexity.proofs scheme level ~n ~u ~r) );
                 ("measured_proofs", string_of_int m.Table1.proofs);
                 ("committed", if o.Outcome.committed then "true" else "false");
                 ( "latency_ms",
                   Obs_json.number (o.Outcome.finished_at -. o.Outcome.submitted_at)
                 );
               ])
           [ Consistency.View; Consistency.Global ])
       Scheme.all)

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)
(* ------------------------------------------------------------------ *)

let section_figure1 () =
  print_newline ();
  print_endline "== Figure 1 -- Bob's anomalous interaction ==";
  print_endline
    "  (full narrative: dune exec examples/bob_scenario.exe; summarized here)";
  (* Summary matrix: stale capability access per scheme x level. *)
  let module Rule = Cloudtx_policy.Rule in
  let module Ca = Cloudtx_policy.Ca in
  let module Credential = Cloudtx_policy.Credential in
  let module Query = Cloudtx_txn.Query in
  let module Transaction = Cloudtx_txn.Transaction in
  let run_once scheme level =
    let ca = Ca.create "compume-ca" in
    let req_atoms =
      [ Rule.atom "req_action" [ Rule.v "a" ]; Rule.atom "req_item" [ Rule.v "i" ] ]
    in
    let policy_p =
      [
        Rule.rule
          (Rule.atom "permit" [ Rule.v "s"; Rule.v "a"; Rule.v "i" ])
          (Rule.atom "role" [ Rule.v "s"; Rule.c "sales_rep" ] :: req_atoms);
      ]
    in
    let policy_p' =
      [
        Rule.rule
          (Rule.atom "permit" [ Rule.v "s"; Rule.v "a"; Rule.v "i" ])
          (Rule.atom "role" [ Rule.v "s"; Rule.c "director" ] :: req_atoms);
      ]
    in
    let cluster =
      Cluster.create ~seed:5L ~latency:(Latency.Constant 1.) ~cas:[ ca ]
        ~servers:
          [
            Cluster.server_spec ~name:"customers-db"
              ~items:[ ("customer-recs", Cloudtx_store.Value.Int 1) ]
              ();
            Cluster.server_spec ~name:"inventory-db"
              ~items:[ ("inventory-recs", Cloudtx_store.Value.Int 1) ]
              ();
          ]
        ~domains:[ ("compume", policy_p) ]
        ()
    in
    (* Bob's capability predates the policy change; P' never reaches the
       inventory replica. *)
    let cap =
      Credential.make ~id:"bob-read-cap" ~subject:"bob" ~issuer:"customers-db"
        ~kind:(Credential.Access { action = "read"; item = "inventory-recs" })
        ~facts:[] ~issued_at:0. ~expires_at:1e9
    in
    ignore
      (Cluster.publish cluster ~domain:"compume" ~accept_capabilities:false
         ~delay:(`Fixed (fun s -> if String.equal s "customers-db" then 0. else infinity))
         policy_p');
    ignore (Cluster.run cluster);
    let txn =
      Transaction.make ~id:"t-bob" ~subject:"bob" ~credentials:[ cap ]
        [
          Query.make ~id:"t-bob-q1" ~server:"inventory-db"
            ~reads:[ "inventory-recs" ] ();
        ]
    in
    Manager.run_one cluster (Manager.config scheme level) txn
  in
  let rows =
    List.concat_map
      (fun scheme ->
        List.map
          (fun level ->
            let o = run_once scheme level in
            [
              Scheme.name scheme;
              Consistency.name level;
              (if o.Outcome.committed then "COMMIT (unsafe!)" else "ABORT (safe)");
              Outcome.reason_name o.Outcome.reason;
            ])
          [ Consistency.View; Consistency.Global ])
      Scheme.all
  in
  Table.print
    ~title:
      "stale-capability access against a replica that never saw policy P'"
    ~headers:[ "scheme"; "level"; "outcome"; "reason" ]
    rows;
  print_endline
    "  paper's shape: view consistency admits the anomaly (stale participants";
  print_endline
    "  agree with each other); global consistency blocks it for every scheme";
  print_endline "  that validates or version-checks against the master."

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

let section_figure2 () =
  print_newline ();
  print_endline
    "== Figure 2 -- interaction among system components (message sequence) ==";
  let scenario =
    Scenario.retail ~latency:(Latency.Constant 1.) ~n_servers:2 ~n_subjects:1 ()
  in
  let cluster = scenario.Scenario.cluster in
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:2 ()
  in
  let outcome =
    Manager.run_one cluster (Manager.config Scheme.Deferred Consistency.Global) txn
  in
  ignore outcome;
  let trace = Transport.trace (Cluster.transport cluster) in
  List.iter
    (fun (time, src, dst, label) ->
      Printf.printf "  %7.2fms  %-14s -> %-14s  %s\n" time src dst label)
    (Trace.messages trace)

(* ------------------------------------------------------------------ *)
(* Figures 3-6                                                         *)
(* ------------------------------------------------------------------ *)

let section_figures_3_to_6 () =
  print_newline ();
  print_endline
    "== Figures 3-6 -- proof-of-authorization timelines (3 servers, u=3) ==";
  print_endline Timeline.legend;
  List.iter
    (fun (scheme, figure) ->
      let scenario =
        Scenario.retail ~latency:(Latency.Constant 1.) ~n_servers:3
          ~n_subjects:1 ()
      in
      let cluster = scenario.Scenario.cluster in
      let txn =
        Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1"
          ~queries:3 ()
      in
      let outcome =
        Manager.run_one cluster (Manager.config scheme Consistency.View) txn
      in
      let trace = Transport.trace (Cluster.transport cluster) in
      let t_start = outcome.Outcome.submitted_at in
      let t_end = outcome.Outcome.finished_at in
      let starts_with prefix s =
        String.length s >= String.length prefix
        && String.sub s 0 (String.length prefix) = prefix
      in
      let events_of server =
        List.filter_map
          (fun (time, node, label) ->
            if node <> server then None
            else if starts_with "query_start:" label then Some (time, `Query)
            else if starts_with "proof_eval:" label then Some (time, `Proof)
            else None)
          (Trace.marks trace)
      in
      let syncs =
        List.filter_map
          (fun (time, node, label) ->
            if node = "tm-t1" && starts_with "sync:" label then
              Some (time, `Sync)
            else None)
          (Trace.marks trace)
      in
      let rows =
        List.map
          (fun server ->
            { Timeline.label = server; events = events_of server @ syncs })
          scenario.Scenario.servers
      in
      Printf.printf "\n%s -- %s proofs of authorization\n" figure
        (Scheme.name scheme);
      print_string (Timeline.render ~width:60 ~t_start ~t_end rows))
    [
      (Scheme.Deferred, "Figure 3");
      (Scheme.Punctual, "Figure 4");
      (Scheme.Incremental_punctual, "Figure 5");
      (Scheme.Continuous, "Figure 6");
    ]

(* ------------------------------------------------------------------ *)
(* Figure 7                                                            *)
(* ------------------------------------------------------------------ *)

let section_figure7 () =
  print_newline ();
  print_endline "== Figure 7 -- the basic two-phase commit protocol ==";
  let stats = Tpc_run.run Tpc.Basic ~votes:[ ("p1", true); ("p2", true) ] in
  Printf.printf
    "  all-YES run, n=2: outcome=%s, messages=%d, forced log writes=%d (2n+1=%d)\n"
    (if stats.Tpc_run.outcome then "COMMIT" else "ABORT")
    stats.Tpc_run.messages
    (stats.Tpc_run.coordinator_forced + stats.Tpc_run.participants_forced)
    ((2 * 2) + 1);
  Printf.printf "  coordinator log: %s\n"
    (String.concat " -> " stats.Tpc_run.coordinator_log);
  List.iter
    (fun (name, log) ->
      Printf.printf "  %s log: %s\n" name (String.concat " -> " log))
    stats.Tpc_run.participant_logs;
  (* The same phases over the simulated network, as a sequence chart. *)
  let scenario =
    Scenario.retail ~latency:(Latency.Constant 1.) ~n_servers:2 ~n_subjects:1 ()
  in
  let cluster = scenario.Scenario.cluster in
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:2 ()
  in
  (* Incremental punctual commits through 2PVC-without-validation = 2PC. *)
  ignore
    (Manager.run_one cluster
       (Manager.config Scheme.Incremental_punctual Consistency.View)
       txn);
  let trace = Transport.trace (Cluster.transport cluster) in
  print_endline "  voting and decision phases on the wire:";
  List.iter
    (fun (time, src, dst, label) ->
      match label with
      | "commit-request" | "commit-reply" | "decision-commit" | "decision-abort"
      | "decision-ack" ->
        Printf.printf "  %7.2fms  %-12s -> %-12s  %s\n" time src dst label
      | _ -> ())
    (Trace.messages trace)

(* ------------------------------------------------------------------ *)
(* Section VI-B trade-off (the announced simulation study)             *)
(* ------------------------------------------------------------------ *)

let tradeoff_cell ~scheme ~level ~queries ~update_period ~n =
  let scenario = Scenario.retail ~seed:11L ~n_servers:6 ~n_subjects:4 () in
  if Float.is_finite update_period then
    Churn.policy_refresh scenario ~period:update_period ~propagation:(0.5, 8.)
      ~count:2000;
  let rng = Splitmix.create 77L in
  let params =
    { Generator.default with queries_per_txn = queries; write_ratio = 0.3 }
  in
  Experiment.run_sequential scenario (Manager.config scheme level) ~n
    (fun ~i -> Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i))

let section_tradeoff () =
  print_newline ();
  print_endline
    "== Section VI-B -- scheme choice vs transaction length and update interval ==";
  print_endline
    "  (the simulation study the paper's conclusion announces; view consistency)";
  let json_cells = ref [] in
  List.iter
    (fun (label, queries, update_period) ->
      let rows =
        List.map
          (fun scheme ->
            let stats =
              tradeoff_cell ~scheme ~level:Consistency.View ~queries
                ~update_period ~n:40
            in
            json_cells :=
              Obs_json.obj
                [
                  ("workload", Obs_json.quote label);
                  ("queries", string_of_int queries);
                  ( "update_period_ms",
                    if Float.is_finite update_period then
                      Obs_json.number update_period
                    else "null" );
                  ("scheme", Obs_json.quote (Scheme.name scheme));
                  ("level", Obs_json.quote (Consistency.name Consistency.View));
                  ("commit_ratio", Obs_json.number (Experiment.commit_ratio stats));
                  ( "latency_ms_mean",
                    Obs_json.number (Sample_set.mean stats.Experiment.latency_ms)
                  );
                  ( "latency_ms_p95",
                    Obs_json.number
                      (Sample_set.percentile stats.Experiment.latency_ms 95.) );
                  ( "proofs_mean",
                    Obs_json.number (Running_stats.mean stats.Experiment.proofs)
                  );
                  ( "messages_mean",
                    Obs_json.number
                      (Running_stats.mean stats.Experiment.protocol_messages) );
                ]
              :: !json_cells;
            [
              Scheme.name scheme;
              Printf.sprintf "%.0f%%" (100. *. Experiment.commit_ratio stats);
              Printf.sprintf "%.2f" (Sample_set.mean stats.Experiment.latency_ms);
              Printf.sprintf "%.2f"
                (Sample_set.percentile stats.Experiment.latency_ms 95.);
              Printf.sprintf "%.1f" (Running_stats.mean stats.Experiment.proofs);
              Printf.sprintf "%.1f"
                (Running_stats.mean stats.Experiment.protocol_messages);
            ])
          Scheme.all
      in
      Table.print
        ~title:
          (Printf.sprintf "%s (u=%d, update period %s)" label queries
             (if Float.is_finite update_period then
                Printf.sprintf "%.0fms" update_period
              else "none"))
        ~headers:[ "scheme"; "commit"; "lat ms"; "p95 ms"; "proofs"; "messages" ]
        rows)
    [
      ("short txns, no churn", 3, infinity);
      ("short txns, rare updates", 3, 400.);
      ("long txns, rare updates", 10, 400.);
      ("short txns, frequent updates", 3, 8.);
      ("long txns, frequent updates", 10, 8.);
    ];
  print_endline "";
  print_endline
    "  expected shape (paper, VI-B): txn length < update interval -> Deferred /";
  print_endline
    "  Punctual are cheapest; txn length > update interval -> Incremental aborts";
  print_endline
    "  pervasively while Continuous keeps committing at quadratic proof cost.";
  write_json_file ~what:"trade-off" (List.rev !json_cells)

(* ------------------------------------------------------------------ *)
(* Logging / 2PC-optimization compatibility                            *)
(* ------------------------------------------------------------------ *)

let section_logging () =
  print_newline ();
  print_endline
    "== Section V recovery / VI-A -- forced-log complexity and 2PC variants ==";
  let n = 3 in
  let votes = List.init n (fun i -> (Printf.sprintf "p%d" i, true)) in
  let veto = ("p0", false) :: List.tl votes in
  let rows =
    List.concat_map
      (fun variant ->
        List.map
          (fun (case, vs) ->
            let stats = Tpc_run.run variant ~votes:vs in
            [
              Tpc.variant_name variant;
              case;
              (if stats.Tpc_run.outcome then "commit" else "abort");
              string_of_int stats.Tpc_run.messages;
              string_of_int
                (stats.Tpc_run.coordinator_forced
                + stats.Tpc_run.participants_forced);
            ])
          [ ("all yes", votes); ("one no", veto) ])
      [ Tpc.Basic; Tpc.Presumed_abort; Tpc.Presumed_commit ]
  in
  Table.print
    ~title:(Printf.sprintf "pure 2PC state machines (n=%d)" n)
    ~headers:[ "variant"; "votes"; "outcome"; "messages"; "forced writes" ]
    rows;
  (* 2PVC on the simulator: participants force prepared + decision, the
     TM forces its decision: 2n + 1, exactly 2PC's log complexity. *)
  let scenario = Scenario.retail ~n_servers:n ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in
  let txn =
    Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:n ()
  in
  ignore (Manager.run_one cluster (Manager.config Scheme.Deferred Consistency.View) txn);
  let participant_forces =
    List.fold_left
      (fun acc name ->
        acc
        + Wal.force_count (Server.wal (Participant.server (Cluster.participant cluster name))))
      0 scenario.Scenario.servers
  in
  let tm_forces =
    Counter.get (Transport.counters (Cluster.transport cluster)) "log_force:tm"
  in
  Printf.printf
    "  2PVC (deferred/view, n=%d): participants forced %d, TM forced %d -- total %d = 2n+1\n"
    n participant_forces tm_forces
    (participant_forces + tm_forces)

(* ------------------------------------------------------------------ *)
(* Ablations: design knobs beyond the paper's core                     *)
(* ------------------------------------------------------------------ *)

module Gossip = Cloudtx_workload.Gossip

let ablation_read_only () =
  (* Read-heavy workload: how much does the classic read-only
     optimization save on the plain-2PC commit path? *)
  let run ~optimize =
    let scenario = Scenario.retail ~seed:13L ~n_servers:4 ~n_subjects:3 () in
    let rng = Splitmix.create 5L in
    let params =
      { Generator.default with queries_per_txn = 4; write_ratio = 0.25 }
    in
    Experiment.run_sequential scenario
      (Manager.config ~read_only_optimization:optimize
         Scheme.Incremental_punctual Consistency.View)
      ~n:40
      (fun ~i -> Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i))
  in
  let base = run ~optimize:false in
  let opt = run ~optimize:true in
  Table.print ~title:"read-only optimization (incremental/view, 25% writes)"
    ~headers:[ "config"; "commit"; "lat ms"; "messages/txn" ]
    [
      [
        "baseline";
        Printf.sprintf "%.0f%%" (100. *. Experiment.commit_ratio base);
        Printf.sprintf "%.2f" (Sample_set.mean base.Experiment.latency_ms);
        Printf.sprintf "%.1f" (Running_stats.mean base.Experiment.protocol_messages);
      ];
      [
        "read-only opt";
        Printf.sprintf "%.0f%%" (100. *. Experiment.commit_ratio opt);
        Printf.sprintf "%.2f" (Sample_set.mean opt.Experiment.latency_ms);
        Printf.sprintf "%.1f" (Running_stats.mean opt.Experiment.protocol_messages);
      ];
    ]

let ablation_master_mode () =
  (* Once vs Every_round master retrieval under global-worst staleness. *)
  let run mode =
    let scenario = Scenario.retail ~n_servers:4 ~n_subjects:1 () in
    let cluster = scenario.Scenario.cluster in
    ignore
      (Cluster.publish cluster ~domain:"retail"
         ~delay:(`Fixed (fun _ -> infinity))
         (Scenario.clerk_rules_refreshed ()));
    let txn =
      Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:4 ()
    in
    let counters = Transport.counters (Cluster.transport cluster) in
    let before = Table1.protocol_messages counters in
    let o =
      Manager.run_one cluster
        (Manager.config ~master_mode:mode Scheme.Deferred Consistency.Global)
        txn
    in
    (o, Table1.protocol_messages counters - before,
     Counter.get counters "msg:master-version-reply")
  in
  let o1, m1, f1 = run `Every_round in
  let o2, m2, f2 = run `Once in
  Table.print ~title:"master-version retrieval (deferred/global, master ahead)"
    ~headers:[ "mode"; "rounds"; "messages"; "master fetches" ]
    [
      [ "every-round"; string_of_int o1.Outcome.commit_rounds; string_of_int m1; string_of_int f1 ];
      [ "once"; string_of_int o2.Outcome.commit_rounds; string_of_int m2; string_of_int f2 ];
    ];
  print_endline
    "  once saves r-1 retrievals; under churn between rounds it risks extra";
  print_endline "  rounds because the target version is frozen (paper, Section V-A)."

let ablation_ocsp () =
  (* Pricing the paper's "online method" of credential status checking:
     commit latency per scheme when every CA check costs a round trip. *)
  let run scheme ocsp =
    let scenario =
      Scenario.retail ?ocsp_latency:ocsp ~latency:(Latency.Constant 1.)
        ~seed:23L ~n_servers:4 ~n_subjects:1 ()
    in
    Manager.run_one scenario.Scenario.cluster
      (Manager.config scheme Consistency.View)
      (Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1"
         ~queries:4 ())
  in
  let rows =
    List.map
      (fun scheme ->
        let free = run scheme None in
        let priced = run scheme (Some (Latency.Constant 2.)) in
        [
          Scheme.name scheme;
          Printf.sprintf "%.1f" (Outcome.latency free);
          Printf.sprintf "%.1f" (Outcome.latency priced);
          Printf.sprintf "+%.1f" (Outcome.latency priced -. Outcome.latency free);
        ])
      Scheme.all
  in
  Table.print
    ~title:"OCSP status checks priced at 2ms each (u=4, view consistency)"
    ~headers:[ "scheme"; "free ms"; "priced ms"; "delta" ]
    rows;
  print_endline
    "  deferred pays one parallel wave at commit; punctual/incremental pay a";
  print_endline
    "  serial check per query; continuous adds a check wave per 2PV invocation";
  print_endline
    "  (and quadratic total checker load, though waves parallelize across";
  print_endline "  servers on the latency path)."

let ablation_gossip () =
  (* A master push that reaches one server out of five; how fast does the
     deployment converge with gossip, and what do global transactions see
     meanwhile? *)
  let scenario = Scenario.retail ~seed:31L ~n_servers:5 ~n_subjects:1 () in
  let cluster = scenario.Scenario.cluster in
  ignore
    (Cluster.publish cluster ~domain:"retail"
       ~delay:(`Fixed (fun s -> if String.equal s "server-3" then 0. else infinity))
       (Scenario.clerk_rules_refreshed ()));
  Gossip.start scenario ~period:10. ~rounds:100;
  (* Sample convergence over time. *)
  let checkpoints = [ 0.; 20.; 40.; 80.; 160.; 320. ] in
  let rows = ref [] in
  List.iter
    (fun t ->
      Transport.at (Cluster.transport cluster) ~delay:t (fun () ->
          let fresh =
            List.length
              (List.filter
                 (fun (_, v) -> v = Some 2)
                 (Gossip.versions scenario ~domain:"retail"))
          in
          rows :=
            [ Printf.sprintf "%.0fms" t; Printf.sprintf "%d / 5" fresh ] :: !rows))
    checkpoints;
  ignore (Cluster.run cluster);
  Table.print ~title:"gossip anti-entropy: replicas holding v2 over time"
    ~headers:[ "time"; "fresh replicas" ]
    (List.rev !rows)

let ablation_master_distance () =
  (* The price of global consistency grows with the master's distance:
     view consistency never contacts it, Deferred/global fetches once per
     round, Continuous/global once per query. *)
  let run scheme level ~master_rtt =
    let scenario =
      Scenario.retail ~latency:(Latency.Constant 1.) ~seed:3L ~n_servers:4
        ~n_subjects:1 ()
    in
    let cluster = scenario.Scenario.cluster in
    let network = Transport.network (Cluster.transport cluster) in
    Cloudtx_sim.Network.set_link network "master" "tm-t1"
      (Latency.Constant master_rtt);
    let txn =
      Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1" ~queries:4 ()
    in
    Outcome.latency (Manager.run_one cluster (Manager.config scheme level) txn)
  in
  let rows =
    List.map
      (fun rtt ->
        [
          Printf.sprintf "%.0fms" rtt;
          Printf.sprintf "%.1f" (run Scheme.Deferred Consistency.View ~master_rtt:rtt);
          Printf.sprintf "%.1f" (run Scheme.Deferred Consistency.Global ~master_rtt:rtt);
          Printf.sprintf "%.1f" (run Scheme.Continuous Consistency.Global ~master_rtt:rtt);
        ])
      [ 1.; 5.; 25.; 100. ]
  in
  Table.print
    ~title:"master placement: one-way TM<->master latency vs commit latency"
    ~headers:
      [ "master link"; "deferred/view"; "deferred/global"; "continuous/global" ]
    rows;
  print_endline
    "  view consistency is immune to master distance; global pays one fetch";
  print_endline
    "  round-trip per 2PVC round (deferred) or per query (continuous)."

let ablation_contention () =
  (* Open-loop runs with increasingly skewed key access: wait-die abort
     rate under lock contention, with and without restart-and-age. *)
  let run zipf ~max_restarts =
    let scenario = Scenario.retail ~seed:47L ~n_servers:3 ~n_subjects:4 () in
    let rng = Splitmix.create 9L in
    let params =
      { Generator.default with queries_per_txn = 3; write_ratio = 1.; zipf_s = zipf }
    in
    let arrivals = List.init 40 (fun i -> float_of_int i *. 1.5) in
    Experiment.run_open ~max_restarts scenario
      (Manager.config Scheme.Deferred Consistency.View)
      ~arrivals
      (fun ~i -> Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i))
  in
  let rows =
    List.map
      (fun zipf ->
        let base = run zipf ~max_restarts:0 in
        let aged = run zipf ~max_restarts:20 in
        [
          Printf.sprintf "%.1f" zipf;
          Printf.sprintf "%.0f%%" (100. *. Experiment.commit_ratio base);
          Printf.sprintf "%.2f" (Sample_set.mean base.Experiment.latency_ms);
          Printf.sprintf "%.0f%%" (100. *. Experiment.commit_ratio aged);
          string_of_int aged.Experiment.restarts;
        ])
      [ 0.; 0.8; 1.5; 2.5 ]
  in
  Table.print
    ~title:"contention: key skew vs wait-die (open loop, all writes, 40 txns)"
    ~headers:[ "zipf s"; "commit"; "lat ms"; "commit w/ aging"; "restarts" ]
    rows;
  print_endline
    "  restart-and-age resubmits wait-die victims with their original";
  print_endline "  timestamps; they grow relatively older and eventually win."

let ablation_snapshot_reads () =
  (* Mixed readers/writers on hot keys: MVCC snapshot reads take the
     readers out of the lock table entirely. *)
  let run ~snapshot =
    let scenario =
      Scenario.retail ~seed:5L ~n_servers:2 ~items_per_server:2 ~n_subjects:4 ()
    in
    let rng = Splitmix.create 11L in
    let writer =
      { Generator.default with queries_per_txn = 2; write_ratio = 1.; zipf_s = 3. }
    in
    let reader = { writer with write_ratio = 0. } in
    let arrivals = List.init 80 (fun i -> float_of_int i *. 0.3) in
    Experiment.run_open scenario
      (Manager.config ~snapshot_reads:snapshot Scheme.Incremental_punctual
         Consistency.View)
      ~arrivals
      (fun ~i ->
        let params = if i mod 2 = 0 then writer else reader in
        Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i))
  in
  let rows =
    List.map
      (fun (label, snapshot) ->
        let stats = run ~snapshot in
        [
          label;
          Printf.sprintf "%.0f%%" (100. *. Experiment.commit_ratio stats);
          string_of_int stats.Experiment.aborted;
          Printf.sprintf "%.2f" (Sample_set.mean stats.Experiment.latency_ms);
        ])
      [ ("locked reads", false); ("snapshot reads", true) ]
  in
  Table.print
    ~title:"MVCC snapshot reads (50% pure readers, hot keys, open loop)"
    ~headers:[ "config"; "commit"; "aborts"; "lat ms" ]
    rows;
  print_endline
    "  snapshot readers hold no shared locks: they cannot die, and writers";
  print_endline "  never queue behind them."

let section_throughput () =
  print_newline ();
  print_endline
    "== Throughput -- closed-loop concurrency scaling (deferred/view) ==";
  let rows =
    List.map
      (fun clients ->
        let scenario = Scenario.retail ~seed:61L ~n_servers:4 ~n_subjects:4 () in
        let rng = Splitmix.create 3L in
        let params =
          { Generator.default with queries_per_txn = 3; write_ratio = 0.3; zipf_s = 0.5 }
        in
        let stats, tps =
          Experiment.run_closed scenario
            (Manager.config Scheme.Deferred Consistency.View)
            ~clients ~total:120
            (fun ~i -> Generator.generate scenario rng params ~id:(Printf.sprintf "t%d" i))
        in
        [
          string_of_int clients;
          Printf.sprintf "%.0f" tps;
          Printf.sprintf "%.0f%%" (100. *. Experiment.commit_ratio stats);
          Printf.sprintf "%.2f" (Sample_set.mean stats.Experiment.latency_ms);
          Printf.sprintf "%.2f" (Sample_set.percentile stats.Experiment.latency_ms 95.);
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  Table.print ~title:"120 transactions, 4 servers, 30% writes"
    ~headers:[ "clients"; "txn/s (sim)"; "commit"; "lat ms"; "p95 ms" ]
    rows;
  print_endline
    "  throughput scales with clients until lock contention and wait-die";
  print_endline "  aborts flatten the curve."

let section_ablations () =
  print_newline ();
  print_endline "== Ablations -- design knobs beyond the paper's core ==";
  ablation_read_only ();
  ablation_master_mode ();
  ablation_ocsp ();
  ablation_gossip ();
  ablation_master_distance ();
  ablation_snapshot_reads ();
  ablation_contention ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  (* Table I / proof machinery: one proof evaluation. *)
  let proof_eval =
    let module Rule = Cloudtx_policy.Rule in
    let module Ca = Cloudtx_policy.Ca in
    let module Policy = Cloudtx_policy.Policy in
    let module Proof = Cloudtx_policy.Proof in
    let ca = Ca.create "ca" in
    let cred =
      Ca.issue ca ~id:"c" ~subject:"bob"
        ~facts:[ Rule.fact "role" [ "bob"; "clerk" ] ]
        ~now:0. ~ttl:1e9
    in
    let policy =
      Policy.create ~domain:"d"
        [
          Rule.rule
            (Rule.atom "permit" [ Rule.v "s"; Rule.v "a"; Rule.v "i" ])
            [
              Rule.atom "role" [ Rule.v "s"; Rule.c "clerk" ];
              Rule.atom "req_action" [ Rule.v "a" ];
              Rule.atom "req_item" [ Rule.v "i" ];
            ];
        ]
    in
    let env =
      {
        Proof.find_ca = (fun _ -> Some ca);
        trusted_server = (fun _ -> false);
        context = (fun () -> []);
      }
    in
    let request = { Proof.subject = "bob"; action = "read"; items = [ "x" ] } in
    Test.make ~name:"proof_evaluation"
      (Staged.stage (fun () ->
           ignore
             (Proof.evaluate ~query_id:"q" ~server:"s" ~policy ~creds:[ cred ]
                ~env ~at:1. request)))
  in
  (* One full simulated transaction per scheme (n = u = 4). *)
  let txn_bench ?(proof_cache = false) ?suffix scheme level =
    let name =
      Printf.sprintf "txn_%s_%s%s" (Scheme.name scheme) (Consistency.name level)
        (Option.value ~default:"" suffix)
    in
    Test.make ~name
      (Staged.stage (fun () ->
           let scenario =
             Scenario.retail ~proof_cache ~n_servers:4 ~n_subjects:1 ()
           in
           let txn =
             Scenario.spread_transaction scenario ~id:"t1" ~subject:"clerk-1"
               ~queries:4 ()
           in
           ignore
             (Manager.run_one scenario.Scenario.cluster
                (Manager.config scheme level)
                txn)))
  in
  (* A policy whose derivation is genuinely expensive (transitive closure
     over a 12-node chain): here memoizing the inference step pays. *)
  let heavy_proof_eval ~cached =
    let module Rule = Cloudtx_policy.Rule in
    let module Ca = Cloudtx_policy.Ca in
    let module Policy = Cloudtx_policy.Policy in
    let module Proof = Cloudtx_policy.Proof in
    let ca = Ca.create "ca" in
    let cred =
      Ca.issue ca ~id:"c" ~subject:"bob"
        ~facts:
          (Rule.fact "role" [ "bob"; "clerk" ]
          :: List.init 11 (fun i ->
                 Rule.fact "grants"
                   [ Printf.sprintf "g%d" i; Printf.sprintf "g%d" (i + 1) ]))
        ~now:0. ~ttl:1e9
    in
    let policy =
      Policy.create ~domain:"d"
        [
          Rule.rule
            (Rule.atom "reach" [ Rule.v "x"; Rule.v "y" ])
            [ Rule.atom "grants" [ Rule.v "x"; Rule.v "y" ] ];
          Rule.rule
            (Rule.atom "reach" [ Rule.v "x"; Rule.v "z" ])
            [
              Rule.atom "reach" [ Rule.v "x"; Rule.v "y" ];
              Rule.atom "grants" [ Rule.v "y"; Rule.v "z" ];
            ];
          Rule.rule
            (Rule.atom "permit" [ Rule.v "s"; Rule.v "a"; Rule.v "i" ])
            [
              Rule.atom "role" [ Rule.v "s"; Rule.c "clerk" ];
              Rule.atom "reach" [ Rule.c "g0"; Rule.c "g11" ];
              Rule.atom "req_action" [ Rule.v "a" ];
              Rule.atom "req_item" [ Rule.v "i" ];
            ];
        ]
    in
    let env =
      {
        Proof.find_ca = (fun _ -> Some ca);
        trusted_server = (fun _ -> false);
        context = (fun () -> []);
      }
    in
    let request = { Proof.subject = "bob"; action = "read"; items = [ "x" ] } in
    let cache = if cached then Some (Hashtbl.create 16) else None in
    Test.make
      ~name:
        (if cached then "proof_eval_heavy_cached" else "proof_eval_heavy")
      (Staged.stage (fun () ->
           ignore
             (Proof.evaluate ?cache ~query_id:"q" ~server:"s" ~policy
                ~creds:[ cred ] ~env ~at:1. request)))
  in
  let tpc_bench =
    Test.make ~name:"pure_2pc_n4"
      (Staged.stage (fun () ->
           ignore
             (Tpc_run.run Tpc.Basic
                ~votes:[ ("a", true); ("b", true); ("c", true); ("d", true) ])))
  in
  let infer_bench =
    let module Rule = Cloudtx_policy.Rule in
    let module Infer = Cloudtx_policy.Infer in
    let rules =
      [
        Rule.rule
          (Rule.atom "reach" [ Rule.v "x"; Rule.v "y" ])
          [ Rule.atom "edge" [ Rule.v "x"; Rule.v "y" ] ];
        Rule.rule
          (Rule.atom "reach" [ Rule.v "x"; Rule.v "z" ])
          [
            Rule.atom "reach" [ Rule.v "x"; Rule.v "y" ];
            Rule.atom "edge" [ Rule.v "y"; Rule.v "z" ];
          ];
        Rule.rule_literals
          (Rule.atom "ok" [ Rule.v "x"; Rule.v "y" ])
          [
            Rule.Pos (Rule.atom "reach" [ Rule.v "x"; Rule.v "y" ]);
            Rule.Neg (Rule.atom "blocked" [ Rule.v "y" ]);
          ];
      ]
    in
    let facts =
      Rule.fact "blocked" [ "n7" ]
      :: List.init 9 (fun i ->
             Rule.fact "edge" [ Printf.sprintf "n%d" i; Printf.sprintf "n%d" (i + 1) ])
    in
    Test.make ~name:"infer_chain10_negation"
      (Staged.stage (fun () -> ignore (Infer.saturate ~rules ~facts)))
  in
  let codec_bench =
    let module Codec = Cloudtx_policy.Codec in
    let policy =
      Cloudtx_policy.Policy.create ~domain:"d" Scenario.clerk_rules
    in
    let wire = Codec.policy_to_string policy in
    Test.make ~name:"codec_policy_roundtrip"
      (Staged.stage (fun () ->
           match Codec.policy_of_string wire with
           | Ok _ -> ()
           | Error _ -> assert false))
  in
  let datalog_bench =
    let module Datalog = Cloudtx_policy.Datalog in
    let text =
      "permit(S, A, I) :- role(S, clerk), req_action(A), req_item(I), not suspended(S).\n"
    in
    Test.make ~name:"datalog_parse_rule"
      (Staged.stage (fun () ->
           match Datalog.parse_rule text with
           | Ok _ -> ()
           | Error _ -> assert false))
  in
  Test.make_grouped ~name:"cloudtx"
    ([
       proof_eval;
       heavy_proof_eval ~cached:false;
       heavy_proof_eval ~cached:true;
       tpc_bench;
       infer_bench;
       codec_bench;
       datalog_bench;
     ]
    @ List.map (fun s -> txn_bench s Consistency.View) Scheme.all
    @ [
        txn_bench Scheme.Deferred Consistency.Global;
        txn_bench ~proof_cache:true ~suffix:"_cached" Scheme.Continuous
          Consistency.View;
      ])

let section_micro () =
  print_newline ();
  print_endline "== Bechamel micro-benchmarks (wall clock) ==";
  let open Bechamel in
  let open Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | Some [] | None -> nan
        in
        [ name; Printf.sprintf "%.1f" ns; Printf.sprintf "%.3f" (ns /. 1e6) ]
        :: acc)
      results []
    |> List.sort compare
  in
  Table.print ~title:"time per run" ~headers:[ "benchmark"; "ns/run"; "ms/run" ] rows;
  print_endline
    "  proof-cache trade-off: memoizing the inference step is ~30x faster on";
  print_endline
    "  derivation-heavy policies (proof_eval_heavy) but the memo key itself";
  print_endline
    "  costs more than the tiny retail policy's saturation — enable per";
  print_endline "  deployment."

(* ------------------------------------------------------------------ *)
(* Certify: serializability checking throughput over the 8-cell grid   *)
(* ------------------------------------------------------------------ *)

let section_certify () =
  print_newline ();
  print_endline "== Certify -- journal-driven serializability checking ==";
  (* One deterministic journal per scheme x level cell: the same seeded
     retail workload the health snapshot runs, recorded in memory. *)
  let corpus =
    List.concat_map
      (fun scheme ->
        List.map
          (fun level ->
            let scenario =
              Scenario.retail ~seed:23L ~n_servers:4 ~n_subjects:4 ()
            in
            let transport = Cluster.transport scenario.Scenario.cluster in
            let journal = Transport.enable_journal transport in
            let rng = Splitmix.create 29L in
            let params =
              { Generator.default with queries_per_txn = 4; write_ratio = 0.4 }
            in
            ignore
              (Experiment.run_sequential scenario (Manager.config scheme level)
                 ~n:12 (fun ~i ->
                   Generator.generate scenario rng params
                     ~id:(Printf.sprintf "t%d" i)));
            let lines =
              String.split_on_char '\n'
                (String.trim (Journal.to_string journal))
            in
            (scheme, level, lines))
          [ Consistency.View; Consistency.Global ])
      Scheme.all
  in
  let certified =
    List.map
      (fun (scheme, level, lines) ->
        match Certify.run ~lines with
        | Ok report -> (scheme, level, lines, report)
        | Error why ->
          Printf.eprintf "certify bench: %s/%s journal unreadable: %s\n"
            (Scheme.name scheme) (Consistency.name level) why;
          exit 2)
      corpus
  in
  (* Throughput: repeated full check + DSG construction, CPU-timed.
     The rates land in the JSON as trajectory fields (not gated). *)
  let reps = 10 in
  let t0 = Sys.time () in
  for _ = 1 to reps do
    List.iter
      (fun (_, _, lines, _) ->
        match Certify.run ~lines with
        | Ok r -> ignore (Certify.to_dsg r)
        | Error _ -> ())
      certified
  done;
  let elapsed = Sys.time () -. t0 in
  let total_edges =
    List.fold_left
      (fun acc (_, _, _, r) -> acc + List.length r.Certify.edges)
      0 certified
  in
  let total_records =
    List.fold_left
      (fun acc (_, _, _, r) -> acc + r.Certify.records)
      0 certified
  in
  let safe_div a b = if b <= 0. then 0. else a /. b in
  let journals_per_sec =
    safe_div (float_of_int (reps * List.length certified)) elapsed
  in
  let edges_per_sec = safe_div (float_of_int (reps * total_edges)) elapsed in
  Table.print
    ~title:"per-cell certification (12 txns/cell, u=4, n=4)"
    ~headers:
      [ "scheme"; "level"; "records"; "committed"; "versions"; "edges"; "verdict" ]
    (List.map
       (fun (scheme, level, _, r) ->
         [
           Scheme.name scheme;
           Consistency.name level;
           string_of_int r.Certify.records;
           string_of_int (List.length r.Certify.committed);
           string_of_int r.Certify.versions;
           string_of_int (List.length r.Certify.edges);
           (match r.Certify.verdict with
           | Certify.Serializable { si; _ } ->
             if si then "serializable (si ok)" else "serializable"
           | Certify.Anomalous a -> "ANOMALY " ^ Certify.anomaly_name a.Certify.anomaly);
         ])
       certified);
  Printf.printf
    "  throughput: %.0f journals/sec, %.0f DSG edges/sec (%d reps, %.2fs CPU)\n"
    journals_per_sec edges_per_sec reps elapsed;
  write_json_file ~what:"certify"
    (List.map
       (fun (scheme, level, _, r) ->
         Obs_json.obj
           [
             ("workload", Obs_json.quote "certify");
             ("scheme", Obs_json.quote (Scheme.name scheme));
             ("level", Obs_json.quote (Consistency.name level));
             ("records", string_of_int r.Certify.records);
             ("decode_errors", string_of_int r.Certify.decode_errors);
             ("committed", string_of_int (List.length r.Certify.committed));
             ("aborted", string_of_int (List.length r.Certify.aborted));
             ("versions", string_of_int r.Certify.versions);
             ("reads_mapped", string_of_int r.Certify.reads_mapped);
             ("edges", string_of_int (List.length r.Certify.edges));
             ( "serializable",
               match r.Certify.verdict with
               | Certify.Serializable _ -> "true"
               | Certify.Anomalous _ -> "false" );
             ( "si",
               match r.Certify.verdict with
               | Certify.Serializable { si; _ } -> if si then "true" else "false"
               | Certify.Anomalous _ -> "false" );
           ])
       certified
    @ [
        Obs_json.obj
          [
            ("workload", Obs_json.quote "certify-throughput");
            ("journals", string_of_int (List.length certified));
            ("records_total", string_of_int total_records);
            ("edges_total", string_of_int total_edges);
            ("journals_per_sec", Obs_json.number journals_per_sec);
            ("edges_per_sec", Obs_json.number edges_per_sec);
          ];
      ])

(* ------------------------------------------------------------------ *)
(* Blame: critical-path decomposition of journal latency               *)
(* ------------------------------------------------------------------ *)

let section_blame () =
  print_newline ();
  print_endline "== Blame -- per-transaction critical-path decomposition ==";
  (* The certify section's deterministic 8-cell corpus, with the metrics
     fabric on so the segment totals can be reconciled against the
     registry's latency histograms -- the same clock points, counted two
     ways. *)
  let corpus =
    List.concat_map
      (fun scheme ->
        List.map
          (fun level ->
            let scenario =
              Scenario.retail ~seed:23L ~n_servers:4 ~n_subjects:4 ()
            in
            let transport = Cluster.transport scenario.Scenario.cluster in
            let journal = Transport.enable_journal transport in
            let registry = Transport.enable_metrics transport in
            let rng = Splitmix.create 29L in
            let params =
              { Generator.default with queries_per_txn = 4; write_ratio = 0.4 }
            in
            ignore
              (Experiment.run_sequential scenario (Manager.config scheme level)
                 ~n:12 (fun ~i ->
                   Generator.generate scenario rng params
                     ~id:(Printf.sprintf "t%d" i)));
            let lines =
              String.split_on_char '\n'
                (String.trim (Journal.to_string journal))
            in
            (scheme, level, lines, registry))
          [ Consistency.View; Consistency.Global ])
      Scheme.all
  in
  let analyzed =
    List.map
      (fun (scheme, level, lines, registry) ->
        match Blame.of_lines lines with
        | Ok b -> (scheme, level, lines, registry, b)
        | Error why ->
          Printf.eprintf "blame bench: %s/%s journal unreadable: %s\n"
            (Scheme.name scheme) (Consistency.name level) why;
          exit 2)
      corpus
  in
  (* Throughput: repeated full replays, CPU-timed.  The rate lands in
     the JSON as a trajectory field (not gated). *)
  let reps = 10 in
  let t0 = Sys.time () in
  for _ = 1 to reps do
    List.iter (fun (_, _, lines, _, _) -> ignore (Blame.of_lines lines)) analyzed
  done;
  let elapsed = Sys.time () -. t0 in
  let safe_div a b = if b <= 0. then 0. else a /. b in
  let journals_per_sec =
    safe_div (float_of_int (reps * List.length analyzed)) elapsed
  in
  let the_cell what b =
    match Critical_path.agg_cells (Blame.agg b) with
    | [ c ] -> c
    | cells ->
      Printf.eprintf "blame bench: %s: expected 1 aggregate cell, got %d\n" what
        (List.length cells);
      exit 2
  in
  let segments_of c =
    List.fold_left
      (fun a (r : Critical_path.row) -> a + r.Critical_path.row_spans)
      0 c.Critical_path.cell_rows
  in
  let rows =
    List.map
      (fun (scheme, level, _, registry, b) ->
        let what =
          Printf.sprintf "%s/%s" (Scheme.name scheme) (Consistency.name level)
        in
        let c = the_cell what b in
        let labels =
          [
            ("scheme", Scheme.name scheme);
            ("consistency", Consistency.name level);
          ]
        in
        let registry_total =
          match Registry.histogram registry "txn_latency_ms" labels with
          | Some h -> Obs_histogram.sum h
          | None -> 0.
        in
        let blame_total = c.Critical_path.cell_total_ms in
        let reconciled =
          Float.abs (registry_total -. blame_total)
          <= 1e-6 +. (1e-9 *. Float.abs registry_total)
        in
        let dominant_kind, dominant_ms =
          match c.Critical_path.cell_rows with
          | r :: _ ->
            ( Critical_path.kind_name r.Critical_path.row_kind,
              r.Critical_path.row_total_ms )
          | [] -> ("-", 0.)
        in
        (scheme, level, b, c, reconciled, dominant_kind, dominant_ms))
      analyzed
  in
  Table.print
    ~title:"per-cell blame decomposition (12 txns/cell, u=4, n=4)"
    ~headers:
      [
        "scheme"; "level"; "txns"; "committed"; "total ms"; "top segment"; "ms";
        "share"; "reconciled";
      ]
    (List.map
       (fun (scheme, level, _b, c, reconciled, dk, dms) ->
         [
           Scheme.name scheme;
           Consistency.name level;
           string_of_int c.Critical_path.cell_txns;
           string_of_int c.Critical_path.cell_committed;
           Printf.sprintf "%.3f" c.Critical_path.cell_total_ms;
           dk;
           Printf.sprintf "%.3f" dms;
           Printf.sprintf "%.1f%%"
             (100. *. safe_div dms c.Critical_path.cell_total_ms);
           (if reconciled then "yes" else "NO");
         ])
       rows);
  Printf.printf "  throughput: %.0f journal replays/sec (%d reps, %.2fs CPU)\n"
    journals_per_sec reps elapsed;
  if List.exists (fun (_, _, _, _, reconciled, _, _) -> not reconciled) rows
  then begin
    Printf.eprintf
      "blame bench: segment totals diverge from the registry histograms\n";
    exit 1
  end;
  let segments_total =
    List.fold_left (fun acc (_, _, _, c, _, _, _) -> acc + segments_of c) 0 rows
  in
  write_json_file ~what:"blame"
    (List.map
       (fun (scheme, level, b, c, reconciled, dk, dms) ->
         Obs_json.obj
           [
             ("workload", Obs_json.quote "blame");
             ("scheme", Obs_json.quote (Scheme.name scheme));
             ("level", Obs_json.quote (Consistency.name level));
             ("txns", string_of_int c.Critical_path.cell_txns);
             ("committed", string_of_int c.Critical_path.cell_committed);
             ("aborted", string_of_int c.Critical_path.cell_aborted);
             ("segments", string_of_int (segments_of c));
             ("decode_errors", string_of_int (Blame.decode_errors b));
             ("uncovered", string_of_int (List.length (Blame.uncovered b)));
             ("total_ms", Obs_json.number c.Critical_path.cell_total_ms);
             ("dominant", Obs_json.quote dk);
             ("dominant_ms", Obs_json.number dms);
             ("reconciled", if reconciled then "true" else "false");
           ])
       rows
    @ [
        Obs_json.obj
          [
            ("workload", Obs_json.quote "blame-throughput");
            ("journals", string_of_int (List.length rows));
            ("segments_total", string_of_int segments_total);
            ("journals_per_sec", Obs_json.number journals_per_sec);
          ];
      ])

(* ------------------------------------------------------------------ *)
(* Journal: binary vs JSONL flight-recorder encoding                   *)
(* ------------------------------------------------------------------ *)

let section_journal () =
  print_newline ();
  print_endline "== Journal -- binary vs JSONL flight-recorder encoding ==";
  (* Corpus: one deterministic retail workload per scheme x level cell,
     recorded through an in-memory binary journal.  Its decoded typed
     payloads drive both encoders below, so the encode comparison runs
     over the exact record mix a full-grid run produces. *)
  let bin_journals =
    List.concat_map
      (fun scheme ->
        List.map
          (fun level ->
            let scenario =
              Scenario.retail ~seed:23L ~n_servers:4 ~n_subjects:4 ()
            in
            let transport = Cluster.transport scenario.Scenario.cluster in
            let journal =
              Transport.enable_journal ~format:Journal.Binary transport
            in
            let rng = Splitmix.create 29L in
            let params =
              { Generator.default with queries_per_txn = 4; write_ratio = 0.4 }
            in
            ignore
              (Experiment.run_sequential scenario (Manager.config scheme level)
                 ~n:6 (fun ~i ->
                   Generator.generate scenario rng params
                     ~id:(Printf.sprintf "t%d" i)));
            Journal.to_string journal)
          [ Consistency.View; Consistency.Global ])
      Scheme.all
  in
  let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt in
  (* Typed frames: (seq, time_ms, node, dir, payload). *)
  let frames =
    List.concat_map
      (fun contents ->
        match Journal.decode_binary contents with
        | Error why -> die "journal bench: corpus decode failed: %s" why
        | Ok d ->
          List.map
            (fun (f : Journal.frame) ->
              match Codec_bin.payload_of_string f.Journal.payload with
              | Error why ->
                die "journal bench: corpus payload %d undecodable: %s"
                  f.Journal.seq why
              | Ok p -> (f.Journal.seq, f.Journal.time_ms, f.Journal.node, f.Journal.dir, p))
            d.Journal.frames)
      bin_journals
  in
  let jsonl_journals =
    List.map
      (fun contents ->
        match Journal_io.convert ~to_:Journal.Jsonl contents with
        | Ok s -> s
        | Error why -> die "journal bench: bin->jsonl conversion failed: %s" why)
      bin_journals
  in
  (* Conversion must round-trip byte-exactly: jsonl -> bin reproduces the
     natively recorded binary journal. *)
  let roundtrip_ok =
    List.for_all2
      (fun bin jsonl ->
        match Journal_io.convert ~to_:Journal.Binary jsonl with
        | Ok back -> String.equal back bin
        | Error _ -> false)
      bin_journals jsonl_journals
  in
  let sum_len l = List.fold_left (fun a s -> a + String.length s) 0 l in
  let records = List.length frames in
  let bin_bytes = sum_len bin_journals in
  let jsonl_bytes = sum_len jsonl_journals in
  let record_lines =
    List.concat_map
      (fun contents ->
        match String.split_on_char '\n' (String.trim contents) with
        | _header :: records -> records
        | [] -> [])
      jsonl_journals
  in
  (* Encode throughput, along the same paths the drivers use: JSONL =
     typed payload -> JSON tree -> rendered line; binary = typed payload
     -> frame bytes straight into a reused buffer. *)
  (* Best-of-R records/sec: each repetition runs the workload for at
     least [min_s] CPU-seconds; the fastest repetition wins.  Nothing
     can make the code run faster than it is, so the best run is the
     one with the least scheduler/GC interference — the repeatable
     number a gate can be held to. *)
  let best_rate ?(reps = 5) ?(min_s = 0.08) f =
    f ();
    (* warm-up, then measure against a settled heap *)
    Gc.compact ();
    let best = ref 0.0 in
    for _ = 1 to reps do
      let t0 = Sys.time () in
      let iters = ref 0 in
      let rec go () =
        f ();
        incr iters;
        if Sys.time () -. t0 < min_s then go ()
      in
      go ();
      let r = float_of_int (!iters * records) /. (Sys.time () -. t0) in
      if r > !best then best := r
    done;
    !best
  in
  let frames_arr = Array.of_list frames in
  let encode_jsonl () =
    Array.iter
      (fun (seq, time_ms, node, dir, p) ->
        let payload = Pcodec.to_string (Codec_bin.payload_to_json p) in
        ignore (Journal.render_jsonl ~seq ~time_ms ~node ~dir ~payload))
      frames_arr
  in
  let wout = Wbuf.create (1 lsl 21) in
  let encode_bin () =
    Wbuf.clear wout;
    Array.iter
      (fun (seq, time_ms, node, dir, p) ->
        if Wbuf.length wout > 1 lsl 20 then Wbuf.clear wout;
        Journal.encode_frame_into wout ~seq ~time_ms ~node ~dir
          ~emit:(fun b -> Codec_bin.emit_payload b p))
      frames_arr
  in
  let jsonl_rps = best_rate encode_jsonl in
  let bin_rps = best_rate encode_bin in
  let encode_speedup = bin_rps /. jsonl_rps in
  let jsonl_mbps = jsonl_rps *. float_of_int jsonl_bytes /. float_of_int records /. 1e6 in
  let bin_mbps = bin_rps *. float_of_int bin_bytes /. float_of_int records /. 1e6 in
  (* Decode throughput: whole-journal replay to typed records. *)
  let decode_jsonl () =
    List.iter
      (fun line ->
        match Pjson.parse line with Ok _ -> () | Error _ -> assert false)
      record_lines
  in
  let decode_bin () =
    List.iter
      (fun contents ->
        match Journal.decode_binary contents with
        | Error _ -> assert false
        | Ok d ->
          List.iter
            (fun (f : Journal.frame) ->
              match Codec_bin.payload_of_string f.Journal.payload with
              | Ok _ -> ()
              | Error _ -> assert false)
            d.Journal.frames)
      bin_journals
  in
  let djsonl_rps = best_rate decode_jsonl in
  let dbin_rps = best_rate decode_bin in
  (* End-to-end: one certified chaos cell per format (same seeds; the
     only difference is the flight recorder's encoding). *)
  let chaos_cell journal_format =
    let t0 = Sys.time () in
    let v =
      Campaign.run ~certify:true ~journal_format
        ~cells:[ { Campaign.scheme = Scheme.Continuous; level = Consistency.Global } ]
        ~plans:2 ()
    in
    (Sys.time () -. t0, List.length v.Campaign.failures)
  in
  let chaos_jsonl_s, chaos_jsonl_fail = chaos_cell Journal.Jsonl in
  let chaos_bin_s, chaos_bin_fail = chaos_cell Journal.Binary in
  Table.print
    ~title:
      (Printf.sprintf "flight-recorder encodings (8-cell corpus, %d records)"
         records)
    ~headers:[ "metric"; "jsonl"; "bin"; "bin/jsonl" ]
    [
      [
        "journal bytes"; string_of_int jsonl_bytes; string_of_int bin_bytes;
        Printf.sprintf "%.2fx smaller"
          (float_of_int jsonl_bytes /. float_of_int bin_bytes);
      ];
      [
        "encode records/s"; Printf.sprintf "%.0f" jsonl_rps;
        Printf.sprintf "%.0f" bin_rps;
        Printf.sprintf "%.1fx faster" encode_speedup;
      ];
      [
        "encode MB/s"; Printf.sprintf "%.1f" jsonl_mbps;
        Printf.sprintf "%.1f" bin_mbps; "";
      ];
      [
        "decode records/s"; Printf.sprintf "%.0f" djsonl_rps;
        Printf.sprintf "%.0f" dbin_rps;
        Printf.sprintf "%.1fx faster" (dbin_rps /. djsonl_rps);
      ];
      [
        "chaos cell (2 plans, certified)"; Printf.sprintf "%.2fs" chaos_jsonl_s;
        Printf.sprintf "%.2fs" chaos_bin_s; "";
      ];
    ];
  Printf.printf "  conversion round-trip (jsonl -> bin = native bin): %s\n"
    (if roundtrip_ok then "byte-exact" else "DIVERGED");
  write_json_file ~what:"journal"
    [
      Obs_json.obj
        [
          ("workload", Obs_json.quote "journal-size");
          ("cells", string_of_int (List.length bin_journals));
          ("records", string_of_int records);
          ("jsonl_bytes", string_of_int jsonl_bytes);
          ("bin_bytes", string_of_int bin_bytes);
          ( "bytes_ratio",
            Obs_json.number (float_of_int jsonl_bytes /. float_of_int bin_bytes)
          );
          ("roundtrip_identity", if roundtrip_ok then "true" else "false");
        ];
      Obs_json.obj
        [
          ("workload", Obs_json.quote "journal-encode");
          ("records", string_of_int records);
          ("jsonl_records_per_sec", Obs_json.number jsonl_rps);
          ("bin_records_per_sec", Obs_json.number bin_rps);
          ("jsonl_mb_per_sec", Obs_json.number jsonl_mbps);
          ("bin_mb_per_sec", Obs_json.number bin_mbps);
          ("encode_speedup", Obs_json.number encode_speedup);
          ("min_encode_speedup", "10");
        ];
      Obs_json.obj
        [
          ("workload", Obs_json.quote "journal-decode");
          ("records", string_of_int records);
          ("jsonl_decode_records_per_sec", Obs_json.number djsonl_rps);
          ("bin_decode_records_per_sec", Obs_json.number dbin_rps);
          ("decode_speedup", Obs_json.number (dbin_rps /. djsonl_rps));
        ];
      Obs_json.obj
        [
          ("workload", Obs_json.quote "journal-chaos");
          ("format", Obs_json.quote "jsonl");
          ("violations", string_of_int chaos_jsonl_fail);
          ("wall_s", Obs_json.number chaos_jsonl_s);
        ];
      Obs_json.obj
        [
          ("workload", Obs_json.quote "journal-chaos");
          ("format", Obs_json.quote "bin");
          ("violations", string_of_int chaos_bin_fail);
          ("wall_s", Obs_json.number chaos_bin_s);
        ];
    ];
  if not roundtrip_ok then die "journal bench: conversion round-trip diverged"

(* ------------------------------------------------------------------ *)
(* Observability: spans + metrics over a full workload                 *)
(* ------------------------------------------------------------------ *)

let section_obs () =
  print_newline ();
  print_endline "== Observability -- transaction-lifecycle spans and metrics ==";
  let scenario = Scenario.retail ~seed:19L ~n_servers:4 ~n_subjects:4 () in
  let transport = Cluster.transport scenario.Scenario.cluster in
  let tracer = Transport.enable_tracing transport in
  let registry = Transport.enable_metrics transport in
  Option.iter
    (fun path -> ignore (Transport.enable_journal ~path transport))
    !obs_journal_out;
  Churn.policy_refresh scenario ~period:50. ~propagation:(0.5, 8.) ~count:5000;
  let rng = Splitmix.create 21L in
  let params = { Generator.default with queries_per_txn = 4; write_ratio = 0.3 } in
  List.iter
    (fun (scheme, level) ->
      ignore
        (Experiment.run_sequential scenario (Manager.config scheme level) ~n:15
           (fun ~i ->
             Generator.generate scenario rng params
               ~id:(Printf.sprintf "%s-%d" (Scheme.name scheme) i))))
    [
      (Scheme.Deferred, Consistency.View);
      (Scheme.Continuous, Consistency.Global);
    ];
  Printf.printf "  %d spans recorded across both runs\n" (Tracer.length tracer);
  (* Span census: how often each lifecycle phase appears. *)
  let census = Hashtbl.create 16 in
  List.iter
    (fun (s : Tracer.span) ->
      if not s.Tracer.instant then
        Hashtbl.replace census s.Tracer.name
          (1 + Option.value ~default:0 (Hashtbl.find_opt census s.Tracer.name)))
    (Tracer.spans tracer);
  Table.print ~title:"span census (non-instant spans)"
    ~headers:[ "span"; "count" ]
    (Hashtbl.fold (fun k v acc -> [ k; string_of_int v ] :: acc) census []
    |> List.sort compare);
  Table.print ~title:"metrics registry snapshot"
    ~headers:[ "metric"; "labels"; "count"; "value/mean"; "p50"; "p95"; "p99" ]
    (Registry.to_rows registry);
  let write path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    Printf.printf "  wrote %s\n" path
  in
  Option.iter (fun p -> write p (Obs_export.to_chrome tracer)) !obs_trace_out;
  Option.iter (fun p -> write p (Registry.to_json registry)) !obs_metrics_json;
  Option.iter
    (fun p ->
      let journal = Transport.journal transport in
      Journal.close journal;
      Printf.printf "  wrote %s (flight-recorder journal, %d records)\n" p
        (Journal.length journal))
    !obs_journal_out;
  (* --- quantile sketch vs exact sample store ------------------------ *)
  (* A deterministic heavy-tailed stream (no RNG dependency): the same
     values feed both backends, so accuracy and retention are pure
     functions of the stream. *)
  let module Sketch = Cloudtx_obs.Sketch in
  let module Histogram = Cloudtx_obs.Histogram in
  let n_stream = 50_000 in
  (* Period 10k: the 10k and 50k streams cover the same value set, so
     retention flatness compares like with like. *)
  let value i =
    let x = float_of_int ((i * 7919 mod 10_000) + 1) in
    0.05 *. (x ** 1.5) /. 100.
  in
  let record backend n =
    let h = Histogram.create ~backend () in
    let t0 = Sys.time () in
    for i = 0 to n - 1 do
      Histogram.observe h (value i)
    done;
    let elapsed = Sys.time () -. t0 in
    (h, elapsed *. 1e9 /. float_of_int n)
  in
  let exact, exact_ns = record Histogram.Exact n_stream in
  let sk, sketch_ns = record Histogram.Sketch n_stream in
  (* Bounded memory: the sketch's footprint must be flat from 10k to 50k
     observations over the same dynamic range, while the exact store
     grows linearly.  Gated (deterministic). *)
  let sk10, _ = record Histogram.Sketch 10_000 in
  let sketch_words_10k = Histogram.retained_words sk10 in
  let sketch_words_50k = Histogram.retained_words sk in
  let exact_words_50k = Histogram.retained_words exact in
  if sketch_words_50k > sketch_words_10k then begin
    Printf.eprintf
      "obs bench: sketch memory grew with the stream (%d -> %d words)\n"
      sketch_words_10k sketch_words_50k;
    exit 2
  end;
  (* Accuracy: every reported quantile within the documented relative
     error bound of the exact percentile.  Gated (deterministic). *)
  let bound =
    match Histogram.sketch sk with
    | Some s -> Sketch.error_bound s
    | None -> assert false
  in
  let worst_rel_err =
    List.fold_left
      (fun acc p ->
        let e = Histogram.percentile exact p
        and g = Histogram.percentile sk p in
        Float.max acc (Float.abs (g -. e) /. e))
      0.
      [ 1.; 25.; 50.; 90.; 99.; 99.9; 100. ]
  in
  if worst_rel_err > bound then begin
    Printf.eprintf "obs bench: sketch error %.4f exceeds the bound %.4f\n"
      worst_rel_err bound;
    exit 2
  end;
  Printf.printf
    "  sketch: %.0f ns/observe vs exact %.0f ns; retention %d words flat \
     (exact: %d); worst quantile error %.3f%% (bound %.3f%%)\n"
    sketch_ns exact_ns sketch_words_50k exact_words_50k
    (100. *. worst_rel_err) (100. *. bound);
  write_json_file ~what:"obs"
    [
      Obs_json.obj
        [
          ("workload", Obs_json.quote "sketch");
          ("stream", string_of_int n_stream);
          ("sketch_words_10k", string_of_int sketch_words_10k);
          ("sketch_words_50k", string_of_int sketch_words_50k);
          ("exact_words_50k", string_of_int exact_words_50k);
          ("memory_bounded", "true");
          ("within_error_bound", "true");
          ("error_bound", Obs_json.number bound);
          ("sketch_ns_per_observe", Obs_json.number sketch_ns);
          ("exact_ns_per_observe", Obs_json.number exact_ns);
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Resilience: adaptive timeouts, breakers, gray-fault sweep           *)
(* ------------------------------------------------------------------ *)

let section_resilience () =
  let module Timeout_policy = Cloudtx_protocol.Timeout_policy in
  let module Resilience = Cloudtx_core.Resilience in
  print_newline ();
  print_endline
    "== Resilience -- adaptive timeouts, circuit breakers, gray faults ==";
  (* Policy math: the jittered backoff schedule is a pure function of
     (seed, machine, epoch, strikes), so the delays themselves are
     deterministic gate fields — any drift in the backoff or jitter
     arithmetic shows up as a baseline mismatch.  The per-call cost is
     the (ungated) trajectory. *)
  let a =
    match Timeout_policy.adaptive () with
    | Timeout_policy.Adaptive a -> a
    | Timeout_policy.Fixed -> assert false
  in
  let name_hash = Timeout_policy.hash_name "tm-t1" in
  let delay strikes =
    Timeout_policy.delay a ~base:10. ~name_hash ~epoch:1 ~strikes
  in
  let calls = 200_000 in
  let t0 = Sys.time () in
  let acc = ref 0. in
  for i = 1 to calls do
    acc := !acc +. Timeout_policy.delay a ~base:10. ~name_hash ~epoch:i ~strikes:(i land 3)
  done;
  let delay_ns = (Sys.time () -. t0) /. float_of_int calls *. 1e9 in
  ignore !acc;
  Printf.printf
    "  backoff schedule (base 10ms): %.3f / %.3f / %.3f / %.3f ms; %.0f \
     ns/delay\n"
    (delay 0) (delay 1) (delay 2) (delay 3) delay_ns;
  (* Budget exhaustion: a participant dies before the commit request and
     never recovers.  The adaptive budgets must still land a clean abort
     in bounded time — the outcome fields are the gate. *)
  let budget_row =
    let s =
      Scenario.retail ~latency:(Latency.Constant 1.) ~n_servers:3 ~n_subjects:1
        ()
    in
    let cluster = s.Scenario.cluster in
    Transport.at (Cluster.transport cluster) ~delay:6.5 (fun () ->
        Participant.crash (Cluster.participant cluster "server-2"));
    let config =
      Manager.config ~vote_timeout:25. ~decision_retry:10.
        ~timeout_policy:(Timeout_policy.adaptive ()) Scheme.Deferred
        Consistency.View
    in
    let result = ref None in
    let txn =
      Scenario.spread_transaction s ~id:"t1" ~subject:"clerk-1" ~queries:3 ()
    in
    Manager.submit cluster config txn ~on_done:(fun o -> result := Some o);
    ignore (Cluster.run cluster);
    match !result with
    | None ->
      Printf.eprintf "resilience bench: budget run hung\n";
      exit 2
    | Some o ->
      Printf.printf "  dead-participant abort: %s after %.1f simulated ms\n"
        (Outcome.reason_name o.Outcome.reason)
        (o.Outcome.finished_at -. o.Outcome.submitted_at);
      Obs_json.obj
        [
          ("workload", Obs_json.quote "budget-exhaustion");
          ("committed", (if o.Outcome.committed then "true" else "false"));
          ("reason", Obs_json.quote (Outcome.reason_name o.Outcome.reason));
        ]
  in
  (* Gray-fault sweep: every cell must survive the same seeded slow-fault
     plans under the adaptive policy with breakers armed, including the
     campaign's graceful-degradation layers (retry budgets, post-heal
     probe, breaker convergence).  Violations gate at zero per cell. *)
  let plans = 3 and base_seed = 9000L in
  let t0 = Sys.time () in
  let rows =
    List.map
      (fun cell ->
        let v =
          Campaign.run
            ~policy:(Timeout_policy.adaptive ())
            ~resilience:(Resilience.config ())
            ~certify:true ~cells:[ cell ] ~base_seed ~plans ()
        in
        Printf.printf "  gray sweep %-24s %d plan(s), %d violation(s)\n"
          (Campaign.cell_name cell) v.Campaign.plans_run
          (List.length v.Campaign.failures);
        Obs_json.obj
          [
            ("workload", Obs_json.quote "gray-sweep");
            ("scheme", Obs_json.quote (Scheme.name cell.Campaign.scheme));
            ("level", Obs_json.quote (Consistency.name cell.Campaign.level));
            ("plans", string_of_int v.Campaign.plans_run);
            ("violations", string_of_int (List.length v.Campaign.failures));
          ])
      Campaign.all_cells
  in
  let wall = Sys.time () -. t0 in
  Printf.printf "  gray sweep wall time: %.2f s\n" wall;
  write_json_file ~what:"resilience"
    (Obs_json.obj
       [
         ("workload", Obs_json.quote "backoff-schedule");
         ("delay_strike0_ms", Obs_json.number (delay 0));
         ("delay_strike1_ms", Obs_json.number (delay 1));
         ("delay_strike2_ms", Obs_json.number (delay 2));
         ("delay_strike3_ms", Obs_json.number (delay 3));
         ("delay_ns_per_call", Obs_json.number delay_ns);
       ]
    :: budget_row :: rows
    @ [
        Obs_json.obj
          [
            ("workload", Obs_json.quote "gray-sweep-total");
            ("cells", string_of_int (List.length rows));
            ("plans_per_cell", string_of_int plans);
            ("wall_s", Obs_json.number wall);
          ];
      ])

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table1", section_table1);
    ("figure1", section_figure1);
    ("figure2", section_figure2);
    ("figures", section_figures_3_to_6);
    ("figure7", section_figure7);
    ("tradeoff", section_tradeoff);
    ("logging", section_logging);
    ("throughput", section_throughput);
    ("ablations", section_ablations);
    ("obs", section_obs);
    ("certify", section_certify);
    ("blame", section_blame);
    ("journal", section_journal);
    ("resilience", section_resilience);
    ("micro", section_micro);
  ]

let () =
  (* Pull --trace-out/--metrics-json/--journal-out/--json FILE out of
     argv; what remains is the list of section names. *)
  let rec parse acc = function
    | [] -> List.rev acc
    | "--trace-out" :: path :: rest ->
      obs_trace_out := Some path;
      parse acc rest
    | "--metrics-json" :: path :: rest ->
      obs_metrics_json := Some path;
      parse acc rest
    | "--journal-out" :: path :: rest ->
      obs_journal_out := Some path;
      parse acc rest
    | "--json" :: path :: rest ->
      json_out := Some path;
      parse acc rest
    | "--check" :: path :: rest ->
      check_baseline := Some path;
      parse acc rest
    | ("--trace-out" | "--metrics-json" | "--journal-out" | "--json"
      | "--check")
      :: [] ->
      Printf.eprintf
        "--trace-out/--metrics-json/--journal-out/--json/--check need a FILE \
         argument\n";
      exit 2
    | arg :: rest -> parse (arg :: acc) rest
  in
  let requested =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst sections
    | args -> args
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown section %s (known: %s)\n" name
          (String.concat ", " (List.map fst sections));
        exit 2)
    requested;
  Option.iter run_check !check_baseline
